#include "nn/init.h"

#include <cmath>

namespace slime {
namespace nn {

Tensor XavierUniform(std::vector<int64_t> shape, Rng* rng) {
  SLIME_CHECK_GE(shape.size(), 1u);
  int64_t fan_out = shape[0];
  int64_t fan_in = 1;
  for (size_t i = 1; i < shape.size(); ++i) fan_in *= shape[i];
  if (shape.size() == 1) fan_in = fan_out;
  const float a =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::RandUniform(std::move(shape), rng, -a, a);
}

Tensor NormalInit(std::vector<int64_t> shape, Rng* rng, float stddev) {
  return Tensor::Randn(std::move(shape), rng, stddev);
}

}  // namespace nn
}  // namespace slime
