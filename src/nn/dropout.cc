#include "nn/dropout.h"

#include "autograd/ops.h"

namespace slime {
namespace nn {

autograd::Variable Dropout::Forward(const autograd::Variable& x,
                                    Rng* rng) const {
  return autograd::Dropout(x, p_, training(), rng);
}

}  // namespace nn
}  // namespace slime
