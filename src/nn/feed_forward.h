#ifndef SLIME4REC_NN_FEED_FORWARD_H_
#define SLIME4REC_NN_FEED_FORWARD_H_

#include <memory>

#include "nn/dropout.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace slime {
namespace nn {

/// The paper's point-wise feed-forward network (Eq. 29):
///   FFN(x) = GELU(x W1 + b1) W2 + b2,
/// with W1, W2 in R^{d x d} (hidden multiplier 1 per the paper), an inner
/// dropout after the activation and an output dropout, matching the
/// reference implementation.
class FeedForward : public Module {
 public:
  FeedForward(int64_t dim, float dropout, Rng* rng,
              int64_t hidden_multiplier = 1);

  autograd::Variable Forward(const autograd::Variable& x, Rng* rng) const;

 private:
  std::shared_ptr<Linear> w1_;
  std::shared_ptr<Linear> w2_;
  std::shared_ptr<Dropout> inner_dropout_;
  std::shared_ptr<Dropout> out_dropout_;
};

}  // namespace nn
}  // namespace slime

#endif  // SLIME4REC_NN_FEED_FORWARD_H_
