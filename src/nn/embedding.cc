#include "nn/embedding.h"

#include "autograd/ops.h"
#include "nn/init.h"

namespace slime {
namespace nn {

Embedding::Embedding(int64_t vocab, int64_t dim, Rng* rng, float init_stddev)
    : vocab_(vocab), dim_(dim) {
  weight_ = RegisterParameter(
      "weight", autograd::Param(NormalInit({vocab, dim}, rng, init_stddev)));
}

autograd::Variable Embedding::Forward(const std::vector<int64_t>& ids,
                                      std::vector<int64_t> out_shape) const {
  return autograd::EmbeddingLookup(weight_, ids, std::move(out_shape));
}

}  // namespace nn
}  // namespace slime
