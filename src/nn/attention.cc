#include "nn/attention.h"

#include <cmath>
#include <vector>

#include "autograd/ops.h"
#include "compute/thread_pool.h"

namespace slime {
namespace nn {

Tensor CausalMask(int64_t n) {
  Tensor mask({n, n});
  float* p = mask.data();
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = 0; j < n; ++j)
      p[i * n + j] = j > i ? -1e9f : 0.0f;
  return mask;
}

MultiHeadSelfAttention::MultiHeadSelfAttention(int64_t dim, int64_t num_heads,
                                               float dropout, Rng* rng)
    : dim_(dim), num_heads_(num_heads), head_dim_(dim / num_heads) {
  SLIME_CHECK_MSG(dim % num_heads == 0,
                  "dim " << dim << " not divisible by heads " << num_heads);
  w_q_ = RegisterModule("w_q", std::make_shared<Linear>(dim, dim, rng));
  w_k_ = RegisterModule("w_k", std::make_shared<Linear>(dim, dim, rng));
  w_v_ = RegisterModule("w_v", std::make_shared<Linear>(dim, dim, rng));
  w_o_ = RegisterModule("w_o", std::make_shared<Linear>(dim, dim, rng));
  attn_dropout_ =
      RegisterModule("attn_dropout", std::make_shared<Dropout>(dropout));
  out_dropout_ =
      RegisterModule("out_dropout", std::make_shared<Dropout>(dropout));
}

autograd::Variable MultiHeadSelfAttention::Forward(
    const autograd::Variable& x, bool causal, const Tensor& key_padding,
    Rng* rng) const {
  using autograd::AddConst;
  using autograd::BatchMatMul;
  using autograd::BatchMatMulTransB;
  using autograd::Concat;
  using autograd::MulScalar;
  using autograd::Slice;
  using autograd::Softmax;
  using autograd::Variable;

  const int64_t b = x.size(0);
  const int64_t n = x.size(1);
  SLIME_CHECK_EQ(x.size(2), dim_);

  Variable q = w_q_->Forward(x);
  Variable k = w_k_->Forward(x);
  Variable v = w_v_->Forward(x);

  // Precompute the additive mask broadcast over the batch: (B, N, N).
  Tensor add_mask({b, n, n});
  {
    float* pm = add_mask.data();
    const Tensor causal_mask = causal ? CausalMask(n) : Tensor();
    compute::ParallelFor(
        0, b, compute::GrainForWork(2 * n * n), [&](int64_t lo, int64_t hi) {
          for (int64_t bi = lo; bi < hi; ++bi)
            for (int64_t i = 0; i < n; ++i)
              for (int64_t j = 0; j < n; ++j) {
                float mval = causal ? causal_mask.data()[i * n + j] : 0.0f;
                if (key_padding.defined())
                  mval += key_padding.data()[bi * n + j];
                pm[(bi * n + i) * n + j] = mval;
              }
        });
  }

  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  std::vector<Variable> head_outputs;
  head_outputs.reserve(num_heads_);
  for (int64_t h = 0; h < num_heads_; ++h) {
    const int64_t lo = h * head_dim_;
    const int64_t hi = lo + head_dim_;
    Variable qh = Slice(q, 2, lo, hi);  // (B, N, dk)
    Variable kh = Slice(k, 2, lo, hi);
    Variable vh = Slice(v, 2, lo, hi);
    Variable scores = MulScalar(BatchMatMulTransB(qh, kh), scale);
    scores = AddConst(scores, add_mask);
    Variable attn = Softmax(scores);
    attn = attn_dropout_->Forward(attn, rng);
    head_outputs.push_back(BatchMatMul(attn, vh));  // (B, N, dk)
  }
  Variable out = num_heads_ == 1 ? head_outputs[0] : Concat(head_outputs, 2);
  out = w_o_->Forward(out);
  return out_dropout_->Forward(out, rng);
}

}  // namespace nn
}  // namespace slime
