#include "nn/module.h"

namespace slime {
namespace nn {

std::vector<autograd::Variable> Module::Parameters() const {
  std::vector<autograd::Variable> out;
  for (const auto& [name, param] : NamedParameters()) {
    (void)name;
    out.push_back(param);
  }
  return out;
}

std::vector<std::pair<std::string, autograd::Variable>>
Module::NamedParameters() const {
  std::vector<std::pair<std::string, autograd::Variable>> out;
  CollectNamed("", &out);
  return out;
}

void Module::CollectNamed(
    const std::string& prefix,
    std::vector<std::pair<std::string, autograd::Variable>>* out) const {
  for (const auto& [name, v] : params_) {
    out->emplace_back(prefix.empty() ? name : prefix + "." + name, v);
  }
  for (const auto& [name, child] : children_) {
    child->CollectNamed(prefix.empty() ? name : prefix + "." + name, out);
  }
}

int64_t Module::ParameterCount() const {
  int64_t n = 0;
  for (const auto& p : Parameters()) n += p.numel();
  return n;
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) {
    (void)name;
    child->SetTraining(training);
  }
}

void Module::ZeroGrad() {
  for (auto& p : Parameters()) p.ZeroGrad();
}

autograd::Variable Module::RegisterParameter(std::string name,
                                             autograd::Variable v) {
  SLIME_CHECK_MSG(v.requires_grad(), "parameter '" << name
                                                   << "' must require grad");
  params_.emplace_back(std::move(name), v);
  return v;
}

}  // namespace nn
}  // namespace slime
