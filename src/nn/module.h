#ifndef SLIME4REC_NN_MODULE_H_
#define SLIME4REC_NN_MODULE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"

namespace slime {
namespace nn {

/// Base class for neural-network layers and models. Provides parameter
/// registration (recursively collected for the optimizer) and a train/eval
/// flag consumed by stochastic layers (dropout).
///
/// Forward signatures are defined by each concrete layer; there is no
/// virtual Forward, because layers take heterogeneous inputs (ids, masks,
/// spectra, ...).
class Module {
 public:
  virtual ~Module() = default;

  /// All parameters of this module and its registered children. Returned
  /// Variables are shared handles: mutating them updates the module.
  std::vector<autograd::Variable> Parameters() const;

  /// (qualified-name, parameter) pairs, e.g. "encoder.0.w_q".
  std::vector<std::pair<std::string, autograd::Variable>> NamedParameters()
      const;

  /// Total scalar parameter count.
  int64_t ParameterCount() const;

  /// Switches train/eval mode recursively.
  void SetTraining(bool training);
  bool training() const { return training_; }

  /// Zeroes gradients of all parameters.
  void ZeroGrad();

 protected:
  /// Registers a parameter; returns a shared handle.
  autograd::Variable RegisterParameter(std::string name,
                                       autograd::Variable v);

  /// Registers a child module; returns the argument for chaining.
  template <typename M>
  std::shared_ptr<M> RegisterModule(std::string name, std::shared_ptr<M> m) {
    children_.emplace_back(std::move(name),
                           std::static_pointer_cast<Module>(m));
    return m;
  }

 private:
  void CollectNamed(
      const std::string& prefix,
      std::vector<std::pair<std::string, autograd::Variable>>* out) const;

  std::vector<std::pair<std::string, autograd::Variable>> params_;
  std::vector<std::pair<std::string, std::shared_ptr<Module>>> children_;
  bool training_ = true;
};

}  // namespace nn
}  // namespace slime

#endif  // SLIME4REC_NN_MODULE_H_
