#include "observability/telemetry.h"

#include <cinttypes>
#include <cstdio>

#include "io/atomic_write.h"
#include "io/env.h"
#include "observability/export.h"

namespace slime {
namespace obs {
namespace {

void AppendKV(std::string* out, const char* key, int64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%" PRId64, key, v);
  *out += buf;
}

void AppendKV(std::string* out, const char* key, double v) {
  char buf[64];
  // %.17g round-trips doubles, so the JSONL is lossless for the metrics.
  std::snprintf(buf, sizeof(buf), "\"%s\":%.17g", key, v);
  *out += buf;
}

void AppendKV(std::string* out, const char* key, const std::string& v) {
  *out += '"';
  *out += key;
  *out += "\":\"";
  *out += JsonEscape(v);
  *out += '"';
}

void AppendMetrics(std::string* out, const char* key,
                   const metrics::RankingMetrics& m) {
  *out += '"';
  *out += key;
  *out += "\":{";
  AppendKV(out, "hr5", m.hr5);
  *out += ',';
  AppendKV(out, "hr10", m.hr10);
  *out += ',';
  AppendKV(out, "ndcg5", m.ndcg5);
  *out += ',';
  AppendKV(out, "ndcg10", m.ndcg10);
  *out += ',';
  AppendKV(out, "mrr", m.mrr);
  *out += '}';
}

}  // namespace

TrainingTelemetry::TrainingTelemetry(bool echo, std::string jsonl_path,
                                     io::Env* env)
    : echo_(echo),
      jsonl_path_(std::move(jsonl_path)),
      env_(env != nullptr ? env : io::Env::Default()) {}

void TrainingTelemetry::OnResume(const ResumeRecord& r) {
  if (echo_) {
    std::printf("[%s] resumed from %s (epoch %lld, best NDCG@10 %.4f)\n",
                r.model.c_str(), r.path.c_str(),
                static_cast<long long>(r.epoch), r.best_valid);
  }
  std::string line = "{\"type\":\"resume\",";
  AppendKV(&line, "model", r.model);
  line += ',';
  AppendKV(&line, "path", r.path);
  line += ',';
  AppendKV(&line, "epoch", r.epoch);
  line += ',';
  AppendKV(&line, "best_valid_ndcg10", r.best_valid);
  line += "}\n";
  Append(line);
}

void TrainingTelemetry::OnEpoch(const EpochRecord& r) {
  if (echo_) {
    std::printf("[%s] epoch %2lld loss %.4f valid NDCG@10 %.4f\n",
                r.model.c_str(), static_cast<long long>(r.epoch), r.loss,
                r.valid.ndcg10);
  }
  epochs_.push_back(r);
  std::string line = "{\"type\":\"epoch\",";
  AppendKV(&line, "model", r.model);
  line += ',';
  AppendKV(&line, "epoch", r.epoch);
  line += ',';
  AppendKV(&line, "loss", r.loss);
  line += ',';
  AppendKV(&line, "lr", r.lr);
  line += ',';
  AppendKV(&line, "grad_norm", r.grad_norm);
  line += ',';
  AppendKV(&line, "batches", r.batches);
  line += ',';
  AppendMetrics(&line, "valid", r.valid);
  line += ',';
  line += "\"improved\":";
  line += r.improved ? "true" : "false";
  line += ',';
  AppendKV(&line, "wall_nanos", r.wall_nanos);
  line += "}\n";
  Append(line);
}

void TrainingTelemetry::OnRollback(const RollbackRecord& r) {
  if (echo_) {
    std::printf(
        "[%s] epoch %2lld diverged; rolling back to epoch %lld, "
        "lr %.2e -> %.2e (rollback %lld/%lld)\n",
        r.model.c_str(), static_cast<long long>(r.diverged_epoch),
        static_cast<long long>(r.rollback_to_epoch), r.old_base_lr,
        r.new_base_lr, static_cast<long long>(r.rollback_index),
        static_cast<long long>(r.max_rollbacks));
  }
  rollbacks_.push_back(r);
  std::string line = "{\"type\":\"rollback\",";
  AppendKV(&line, "model", r.model);
  line += ',';
  AppendKV(&line, "diverged_epoch", r.diverged_epoch);
  line += ',';
  AppendKV(&line, "rollback_to_epoch", r.rollback_to_epoch);
  line += ',';
  AppendKV(&line, "old_base_lr", r.old_base_lr);
  line += ',';
  AppendKV(&line, "new_base_lr", r.new_base_lr);
  line += ',';
  AppendKV(&line, "rollback_index", r.rollback_index);
  line += ',';
  AppendKV(&line, "max_rollbacks", r.max_rollbacks);
  line += "}\n";
  Append(line);
}

void TrainingTelemetry::OnFitSummary(const FitSummaryRecord& r) {
  std::string line = "{\"type\":\"fit_summary\",";
  AppendKV(&line, "model", r.model);
  line += ',';
  AppendKV(&line, "epochs_run", r.epochs_run);
  line += ',';
  AppendKV(&line, "best_epoch", r.best_epoch);
  line += ',';
  AppendKV(&line, "rollbacks", r.rollbacks);
  line += ',';
  AppendKV(&line, "final_train_loss", r.final_train_loss);
  line += ',';
  AppendMetrics(&line, "test", r.test);
  line += "}\n";
  Append(line);
}

void TrainingTelemetry::Append(const std::string& line) {
  jsonl_ += line;
  if (!jsonl_path_.empty()) {
    const Status s = Flush();
    (void)s;  // sticky in status_; telemetry I/O never fails training
  }
}

Status TrainingTelemetry::Flush() {
  if (jsonl_path_.empty()) return Status::OK();
  // Checkpoint-style crash safety: stage the whole log, verify, then
  // atomically swap it in, so the file on disk is always a complete JSONL
  // document.
  const Status s = io::AtomicWriteFile(env_, jsonl_path_, jsonl_);
  if (!s.ok() && status_.ok()) status_ = s;
  return s;
}

}  // namespace obs
}  // namespace slime
