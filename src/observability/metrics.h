#ifndef SLIME4REC_OBSERVABILITY_METRICS_H_
#define SLIME4REC_OBSERVABILITY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace slime {
namespace obs {

/// slime::obs — the library's substitute for Prometheus client libraries
/// and torch.profiler (see DESIGN.md §1): a process-local metrics registry
/// whose snapshots are plain data, deterministic under a FakeClock, and
/// exportable as JSONL or a human table (export.h).
///
/// Design constraints, in order:
///  1. **Lock-cheap hot path.** Handles (Counter/Gauge/Histogram) are tiny
///     value types holding a raw pointer into registry-owned storage; an
///     increment is one relaxed atomic RMW, no lock, no map lookup. The
///     registry mutex is only taken at handle-creation and snapshot time.
///  2. **Provably near-free when disabled.** A handle from a disabled
///     registry (NoopRegistry) carries a null slot pointer; every operation
///     is a single predictable branch. bench_serving gates on this.
///  3. **Deterministic snapshots.** All state is integer (counts, sums,
///     nanosecond values); percentile extraction is integer arithmetic over
///     fixed buckets, so two runs feeding identical observation sequences
///     (e.g. under a FakeClock) produce bit-identical snapshots at any
///     thread count.
///
/// Metric values are int64 throughout: counters count events, gauges hold
/// the latest level, histograms observe nanoseconds (or any other integer
/// unit — name the metric accordingly, e.g. "serving.request_nanos").

class MetricsRegistry;

namespace internal {

/// Registry-owned histogram storage. `bounds` are inclusive upper bounds of
/// the first bounds.size() buckets; one implicit overflow bucket follows.
struct HistogramCell {
  std::vector<int64_t> bounds;
  std::unique_ptr<std::atomic<int64_t>[]> buckets;  // bounds.size() + 1
  std::atomic<int64_t> count{0};
  std::atomic<int64_t> sum{0};
  std::atomic<int64_t> min{0};  // valid only while count > 0
  std::atomic<int64_t> max{0};
};

}  // namespace internal

/// Monotone event counter. Default-constructed or noop-registry handles are
/// detached: Increment is a no-op and value() reads 0.
class Counter {
 public:
  Counter() = default;

  void Increment(int64_t delta = 1) {
    if (slot_ != nullptr) slot_->fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const {
    return slot_ != nullptr ? slot_->load(std::memory_order_relaxed) : 0;
  }
  bool attached() const { return slot_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::atomic<int64_t>* slot) : slot_(slot) {}
  std::atomic<int64_t>* slot_ = nullptr;
};

/// Last-value-wins level (queue depth, cost estimate, health code).
class Gauge {
 public:
  Gauge() = default;

  void Set(int64_t value) {
    if (slot_ != nullptr) slot_->store(value, std::memory_order_relaxed);
  }
  void Add(int64_t delta) {
    if (slot_ != nullptr) slot_->fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const {
    return slot_ != nullptr ? slot_->load(std::memory_order_relaxed) : 0;
  }
  bool attached() const { return slot_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::atomic<int64_t>* slot) : slot_(slot) {}
  std::atomic<int64_t>* slot_ = nullptr;
};

/// Fixed-bucket integer histogram with min/max/sum tracking. Bucket
/// boundaries are frozen at creation, so Observe never allocates and the
/// percentile extraction in snapshots is reproducible.
class Histogram {
 public:
  Histogram() = default;

  void Observe(int64_t value);

  int64_t count() const {
    return cell_ != nullptr ? cell_->count.load(std::memory_order_relaxed)
                            : 0;
  }
  int64_t sum() const {
    return cell_ != nullptr ? cell_->sum.load(std::memory_order_relaxed) : 0;
  }
  bool attached() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(internal::HistogramCell* cell) : cell_(cell) {}
  internal::HistogramCell* cell_ = nullptr;
};

/// One counter/gauge in a snapshot.
struct MetricValue {
  std::string name;
  int64_t value = 0;
};

/// One histogram in a snapshot, percentiles pre-extracted. `bounds` are the
/// configured upper bounds; `buckets` has bounds.size() + 1 entries, the
/// last being the overflow bucket. Percentiles report the selected bucket's
/// upper bound (clamped to the observed max), computed with pure integer
/// arithmetic: rank = ceil(count * p / 100), first bucket whose cumulative
/// count reaches the rank.
struct HistogramValue {
  std::string name;
  int64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;
  int64_t max = 0;
  int64_t p50 = 0;
  int64_t p95 = 0;
  int64_t p99 = 0;
  std::vector<int64_t> bounds;
  std::vector<int64_t> buckets;
};

/// Point-in-time copy of every metric, sorted by name (std::map order), so
/// identical registry contents always serialise identically.
struct MetricsSnapshot {
  std::vector<MetricValue> counters;
  std::vector<MetricValue> gauges;
  std::vector<HistogramValue> histograms;
};

/// Extracts the integer percentile (p in [0, 100]) from a histogram value's
/// buckets; exposed for tests.
int64_t HistogramPercentile(const HistogramValue& h, int64_t p);

/// Owns metric storage and hands out cheap handles. Thread-safe: handle
/// creation and Snapshot take the registry mutex; handle operations are
/// lock-free. Storage addresses are stable for the registry's lifetime
/// (deque/unique_ptr cells), so handles may be freely copied and cached.
class MetricsRegistry {
 public:
  /// `enabled = false` builds a registry whose handles are all detached —
  /// the NoopRegistry. Snapshot() of a disabled registry is empty.
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  bool enabled() const { return enabled_; }

  /// Returns the handle for `name`, creating the metric on first use.
  /// Requesting the same name twice returns handles over the same storage;
  /// requesting a name already registered as a different metric kind
  /// aborts (programming error).
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  /// `bounds` must be strictly increasing; empty selects
  /// DefaultLatencyBounds(). Bounds are fixed by the first registration.
  Histogram histogram(const std::string& name,
                      std::vector<int64_t> bounds = {});

  MetricsSnapshot Snapshot() const;

  /// Default histogram bucketing for nanosecond latencies: powers of four
  /// from 1us to ~4.4s (12 buckets + overflow). Integer bounds keep
  /// percentile extraction exact.
  static const std::vector<int64_t>& DefaultLatencyBounds();

 private:
  const bool enabled_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<std::atomic<int64_t>>> counters_;
  std::map<std::string, std::unique_ptr<std::atomic<int64_t>>> gauges_;
  std::map<std::string, std::unique_ptr<internal::HistogramCell>>
      histograms_;
};

/// The always-disabled registry, for explicitly opting a subsystem out of
/// instrumentation (the "metrics off" arm of the bench gate). Handles from
/// it are detached; the serve path through them must stay within noise of
/// the un-instrumented baseline.
class NoopRegistry : public MetricsRegistry {
 public:
  NoopRegistry() : MetricsRegistry(false) {}
};

}  // namespace obs
}  // namespace slime

#endif  // SLIME4REC_OBSERVABILITY_METRICS_H_
