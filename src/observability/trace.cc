#include "observability/trace.h"

#include <utility>

namespace slime {
namespace obs {

TraceBuilder::TraceBuilder(Tracer* tracer, int64_t id, serving::Clock* clock)
    : tracer_(tracer), clock_(clock) {
  trace_.id = id;
}

int32_t TraceBuilder::BeginSpan(const std::string& name) {
  if (tracer_ == nullptr) return -1;
  SpanRecord span;
  span.name = name;
  span.start_nanos = clock_->NowNanos();
  span.parent = open_.empty() ? -1 : open_.back();
  span.depth = span.parent < 0
                   ? 0
                   : trace_.spans[static_cast<size_t>(span.parent)].depth + 1;
  const int32_t index = static_cast<int32_t>(trace_.spans.size());
  trace_.spans.push_back(std::move(span));
  open_.push_back(index);
  return index;
}

void TraceBuilder::EndSpan(int32_t span) {
  if (tracer_ == nullptr || span < 0 ||
      span >= static_cast<int32_t>(trace_.spans.size())) {
    return;
  }
  SpanRecord& rec = trace_.spans[static_cast<size_t>(span)];
  if (rec.end_nanos == 0) rec.end_nanos = clock_->NowNanos();
  // Pop the open stack through this span (closing a parent closes any
  // still-open children — defensive; well-formed callers nest properly).
  while (!open_.empty()) {
    const int32_t top = open_.back();
    open_.pop_back();
    SpanRecord& t = trace_.spans[static_cast<size_t>(top)];
    if (t.end_nanos == 0) t.end_nanos = rec.end_nanos;
    if (top == span) break;
  }
}

void TraceBuilder::Annotate(int32_t span, const std::string& key,
                            const std::string& value) {
  if (tracer_ == nullptr || span < 0 ||
      span >= static_cast<int32_t>(trace_.spans.size())) {
    return;
  }
  trace_.spans[static_cast<size_t>(span)].annotations.emplace_back(key,
                                                                   value);
}

void TraceBuilder::Finish() {
  if (tracer_ == nullptr) return;
  const int64_t now = clock_->NowNanos();
  for (SpanRecord& span : trace_.spans) {
    if (span.end_nanos == 0) span.end_nanos = now;
  }
  open_.clear();
  tracer_->Record(std::move(trace_));
  tracer_ = nullptr;  // builder is spent
}

Tracer::Tracer(serving::Clock* clock, size_t capacity)
    : clock_(clock), capacity_(capacity == 0 ? 1 : capacity) {}

TraceBuilder Tracer::StartTrace(const std::string& name) {
  int64_t id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
  }
  TraceBuilder builder(this, id, clock_);
  builder.BeginSpan(name);
  return builder;
}

void Tracer::Record(Trace trace) {
  std::lock_guard<std::mutex> lock(mu_);
  finished_.push_back(std::move(trace));
  while (finished_.size() > capacity_) finished_.pop_front();
}

std::vector<Trace> Tracer::Traces() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<Trace>(finished_.begin(), finished_.end());
}

}  // namespace obs
}  // namespace slime
