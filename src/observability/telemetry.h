#ifndef SLIME4REC_OBSERVABILITY_TELEMETRY_H_
#define SLIME4REC_OBSERVABILITY_TELEMETRY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "metrics/ranking.h"

namespace slime {

namespace io {
class Env;
}  // namespace io

namespace obs {

/// Structured training telemetry: `Trainer::Fit` emits one record per
/// resume / epoch / rollback / fit-end instead of bare printf lines. The
/// sink keeps the records in memory (tests assert on them directly), can
/// echo the classic one-line-per-epoch console output, and — when given a
/// path — persists the JSONL log crash-safely after every record via
/// `io::Env` (whole-file write to `<path>.tmp`, then atomic rename, the
/// checkpoint protocol), so a killed run keeps telemetry for every epoch
/// that finished.

/// A run resumed from a snapshot ("resumed from" line).
struct ResumeRecord {
  std::string model;
  std::string path;
  int64_t epoch = 0;       // snapshot epoch; training continues at epoch+1
  double best_valid = 0.0;  // best validation NDCG@10 so far
};

/// One completed (non-diverged) training epoch.
struct EpochRecord {
  std::string model;
  int64_t epoch = 0;
  double loss = 0.0;      // mean train loss over the epoch's batches
  double lr = 0.0;        // effective rate after warmup/decay/rollbacks
  double grad_norm = 0.0; // max pre-clip global grad norm (0 if clipping off)
  int64_t batches = 0;
  metrics::RankingMetrics valid;  // validation pass after the epoch
  bool improved = false;          // new best validation NDCG@10
  int64_t wall_nanos = 0;         // epoch wall time incl. validation
};

/// A divergence rollback (non-finite loss or gradient).
struct RollbackRecord {
  std::string model;
  int64_t diverged_epoch = 0;
  int64_t rollback_to_epoch = 0;
  double old_base_lr = 0.0;
  double new_base_lr = 0.0;
  int64_t rollback_index = 0;  // 1-based
  int64_t max_rollbacks = 0;
};

/// End-of-fit summary (test metrics over the best-validation parameters).
struct FitSummaryRecord {
  std::string model;
  int64_t epochs_run = 0;
  int64_t best_epoch = 0;
  int64_t rollbacks = 0;
  double final_train_loss = 0.0;
  metrics::RankingMetrics test;
};

/// Collects training records in arrival order. Not thread-safe: Fit is a
/// single-threaded loop and owns its sink for the duration of the run.
class TrainingTelemetry {
 public:
  /// In-memory sink; `echo` prints the classic console lines to stdout.
  explicit TrainingTelemetry(bool echo = false)
      : TrainingTelemetry(echo, std::string(), nullptr) {}

  /// Persistent sink: every record appends a JSONL line and rewrites
  /// `jsonl_path` crash-safely through `env` (nullptr = Env::Default()).
  TrainingTelemetry(bool echo, std::string jsonl_path, io::Env* env);

  TrainingTelemetry(const TrainingTelemetry&) = delete;
  TrainingTelemetry& operator=(const TrainingTelemetry&) = delete;

  void OnResume(const ResumeRecord& record);
  void OnEpoch(const EpochRecord& record);
  void OnRollback(const RollbackRecord& record);
  void OnFitSummary(const FitSummaryRecord& record);

  const std::vector<EpochRecord>& epochs() const { return epochs_; }
  const std::vector<RollbackRecord>& rollbacks() const { return rollbacks_; }

  /// The full JSONL log (records in arrival order, lines of type "resume",
  /// "epoch", "rollback", "fit_summary").
  const std::string& jsonl() const { return jsonl_; }

  /// Rewrites the log file now (no-op without a path). Also called after
  /// every record; exposed so owners can force a final write.
  Status Flush();

  /// Sticky: the first flush failure, OK otherwise. Telemetry I/O errors
  /// never fail training — callers that care (the CLI) check here.
  const Status& status() const { return status_; }

 private:
  void Append(const std::string& line);

  const bool echo_;
  const std::string jsonl_path_;
  io::Env* env_;
  std::string jsonl_;
  std::vector<EpochRecord> epochs_;
  std::vector<RollbackRecord> rollbacks_;
  Status status_ = Status::OK();
};

}  // namespace obs
}  // namespace slime

#endif  // SLIME4REC_OBSERVABILITY_TELEMETRY_H_
