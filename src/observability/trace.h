#ifndef SLIME4REC_OBSERVABILITY_TRACE_H_
#define SLIME4REC_OBSERVABILITY_TRACE_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "serving/clock.h"

namespace slime {
namespace obs {

/// Request tracing: a Trace is a flat pre-order list of timed spans forming
/// a tree (parent/depth indices instead of pointers, so traces are plain
/// copyable data). The serving layer opens one trace per request and spans
/// for each stage (admit → snapshot → forward → top-k); tier downgrades and
/// shed decisions land as annotations on the enclosing span.
///
/// Timing comes from a serving::Clock, so under a FakeClock whole traces are
/// bit-for-bit reproducible. The Tracer keeps a bounded ring of finished
/// traces (oldest evicted first) — it is a flight recorder, not a log.

/// One timed node in a trace tree.
struct SpanRecord {
  std::string name;
  int64_t start_nanos = 0;
  int64_t end_nanos = 0;
  int32_t parent = -1;  // index into Trace::spans, -1 for the root
  int32_t depth = 0;
  /// Key/value notes ("tier" → "fallback", "shed" → "rate").
  std::vector<std::pair<std::string, std::string>> annotations;

  int64_t duration_nanos() const { return end_nanos - start_nanos; }
};

/// A finished request trace: spans in creation (pre-order) order.
struct Trace {
  int64_t id = 0;
  std::vector<SpanRecord> spans;
};

class Tracer;

/// An in-flight trace being built by one request. Not thread-safe — a trace
/// belongs to the request's thread; concurrency happens across builders,
/// which is safe because each builder owns its Trace until Finish().
///
/// Disabled path: a TraceBuilder from a null/disabled Tracer has
/// enabled() == false and every operation is a cheap early-out.
class TraceBuilder {
 public:
  TraceBuilder() = default;  // disabled
  TraceBuilder(TraceBuilder&& other) noexcept { *this = std::move(other); }
  TraceBuilder& operator=(TraceBuilder&& other) noexcept {
    tracer_ = other.tracer_;
    other.tracer_ = nullptr;  // moved-from builder is spent
    clock_ = other.clock_;
    trace_ = std::move(other.trace_);
    open_ = std::move(other.open_);
    return *this;
  }
  TraceBuilder(const TraceBuilder&) = delete;
  TraceBuilder& operator=(const TraceBuilder&) = delete;

  bool enabled() const { return tracer_ != nullptr; }

  /// Opens a span nested under the most recent unfinished span. Returns its
  /// index (pass to EndSpan / Annotate); -1 when disabled.
  int32_t BeginSpan(const std::string& name);
  void EndSpan(int32_t span);
  void Annotate(int32_t span, const std::string& key,
                const std::string& value);

  /// Closes any open spans and hands the trace to the tracer's ring.
  void Finish();

 private:
  friend class Tracer;
  TraceBuilder(Tracer* tracer, int64_t id, serving::Clock* clock);

  Tracer* tracer_ = nullptr;  // null = disabled
  serving::Clock* clock_ = nullptr;
  Trace trace_;
  std::vector<int32_t> open_;  // stack of unfinished span indices
};

/// RAII span: begins on construction, ends on destruction. The natural way
/// to time a scope:
///
///   obs::TraceSpan span(builder, "forward");
///   ... run the model ...
///   span.Annotate("tier", "full");
class TraceSpan {
 public:
  TraceSpan(TraceBuilder& builder, const std::string& name)
      : builder_(builder), span_(builder.BeginSpan(name)) {}
  ~TraceSpan() { builder_.EndSpan(span_); }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void Annotate(const std::string& key, const std::string& value) {
    builder_.Annotate(span_, key, value);
  }

 private:
  TraceBuilder& builder_;
  int32_t span_;
};

/// Owns the finished-trace ring buffer and mints builders. Thread-safe.
class Tracer {
 public:
  /// `capacity` = number of finished traces retained (oldest evicted).
  explicit Tracer(serving::Clock* clock = serving::Clock::Default(),
                  size_t capacity = 256);

  /// Starts a new trace whose root span is `name`. Trace ids are assigned
  /// from a per-tracer sequence — deterministic given the request order.
  TraceBuilder StartTrace(const std::string& name);

  /// Snapshot of retained traces, oldest first.
  std::vector<Trace> Traces() const;
  size_t capacity() const { return capacity_; }

 private:
  friend class TraceBuilder;
  void Record(Trace trace);

  serving::Clock* clock_;
  const size_t capacity_;
  mutable std::mutex mu_;
  int64_t next_id_ = 1;          // guarded by mu_
  std::deque<Trace> finished_;   // guarded by mu_
};

}  // namespace obs
}  // namespace slime

#endif  // SLIME4REC_OBSERVABILITY_TRACE_H_
