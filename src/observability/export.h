#ifndef SLIME4REC_OBSERVABILITY_EXPORT_H_
#define SLIME4REC_OBSERVABILITY_EXPORT_H_

#include <string>
#include <string_view>
#include <vector>

#include "observability/metrics.h"
#include "observability/trace.h"

namespace slime {
namespace obs {

/// Exporters for the two audiences of slime::obs data:
///  - machines: JSONL — one self-describing JSON object per line, every
///    line carrying a leading `"type"` field ("counter", "gauge",
///    "histogram", "trace", plus "epoch"/"rollback"/"fit_summary" from
///    telemetry.h), so a consumer can stream-filter with grep/jq without
///    parsing a document. See docs/OBSERVABILITY.md for the schema.
///  - humans: fixed-width tables via bench::TablePrinter, matching the
///    bench binaries' console style.

/// Escapes a string for embedding inside a JSON string literal (quotes,
/// backslash, control characters).
std::string JsonEscape(std::string_view s);

/// One JSONL line per metric:
///   {"type":"counter","name":"serving.requests","value":12}
///   {"type":"gauge","name":"serving.cost.full_nanos","value":800000}
///   {"type":"histogram","name":"serving.request_nanos","count":12,
///    "sum":...,"min":...,"max":...,"p50":...,"p95":...,"p99":...,
///    "bounds":[...],"buckets":[...]}
/// Metrics appear sorted by name within each kind (snapshot order), so the
/// export of a given snapshot is byte-identical across runs.
std::string SnapshotToJsonl(const MetricsSnapshot& snapshot);

/// Human-readable rendering: a counters/gauges table followed by a
/// histogram table with count/min/p50/p95/p99/max columns.
std::string SnapshotToTable(const MetricsSnapshot& snapshot);

/// One JSONL line per trace, spans inline in creation (pre-order) order:
///   {"type":"trace","id":3,"spans":[{"name":"request","start":0,
///    "end":9000,"parent":-1,"annotations":{"tier":"full"}},...]}
std::string TraceToJsonl(const Trace& trace);
std::string TracesToJsonl(const std::vector<Trace>& traces);

/// Indented tree rendering of one trace (durations in microseconds).
std::string TraceToTable(const Trace& trace);

}  // namespace obs
}  // namespace slime

#endif  // SLIME4REC_OBSERVABILITY_EXPORT_H_
