#include "observability/export.h"

#include <cinttypes>
#include <cstdio>

#include "bench_util/table_printer.h"

namespace slime {
namespace obs {
namespace {

void AppendInt(std::string* out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  *out += buf;
}

std::string IntStr(int64_t v) {
  std::string s;
  AppendInt(&s, v);
  return s;
}

void AppendIntArray(std::string* out, const std::vector<int64_t>& values) {
  *out += '[';
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) *out += ',';
    AppendInt(out, values[i]);
  }
  *out += ']';
}

}  // namespace

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string SnapshotToJsonl(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const MetricValue& c : snapshot.counters) {
    out += "{\"type\":\"counter\",\"name\":\"";
    out += JsonEscape(c.name);
    out += "\",\"value\":";
    AppendInt(&out, c.value);
    out += "}\n";
  }
  for (const MetricValue& g : snapshot.gauges) {
    out += "{\"type\":\"gauge\",\"name\":\"";
    out += JsonEscape(g.name);
    out += "\",\"value\":";
    AppendInt(&out, g.value);
    out += "}\n";
  }
  for (const HistogramValue& h : snapshot.histograms) {
    out += "{\"type\":\"histogram\",\"name\":\"";
    out += JsonEscape(h.name);
    out += "\",\"count\":";
    AppendInt(&out, h.count);
    out += ",\"sum\":";
    AppendInt(&out, h.sum);
    out += ",\"min\":";
    AppendInt(&out, h.min);
    out += ",\"max\":";
    AppendInt(&out, h.max);
    out += ",\"p50\":";
    AppendInt(&out, h.p50);
    out += ",\"p95\":";
    AppendInt(&out, h.p95);
    out += ",\"p99\":";
    AppendInt(&out, h.p99);
    out += ",\"bounds\":";
    AppendIntArray(&out, h.bounds);
    out += ",\"buckets\":";
    AppendIntArray(&out, h.buckets);
    out += "}\n";
  }
  return out;
}

std::string SnapshotToTable(const MetricsSnapshot& snapshot) {
  std::string out;
  if (!snapshot.counters.empty() || !snapshot.gauges.empty()) {
    bench::TablePrinter scalars({"metric", "kind", "value"});
    for (const MetricValue& c : snapshot.counters) {
      scalars.AddRow({c.name, "counter", IntStr(c.value)});
    }
    for (const MetricValue& g : snapshot.gauges) {
      scalars.AddRow({g.name, "gauge", IntStr(g.value)});
    }
    out += scalars.ToString();
  }
  if (!snapshot.histograms.empty()) {
    bench::TablePrinter hist(
        {"histogram", "count", "min", "p50", "p95", "p99", "max"});
    for (const HistogramValue& h : snapshot.histograms) {
      hist.AddRow({h.name, IntStr(h.count), IntStr(h.min), IntStr(h.p50),
                   IntStr(h.p95), IntStr(h.p99), IntStr(h.max)});
    }
    if (!out.empty()) out += "\n";
    out += hist.ToString();
  }
  return out;
}

std::string TraceToJsonl(const Trace& trace) {
  std::string out = "{\"type\":\"trace\",\"id\":";
  AppendInt(&out, trace.id);
  out += ",\"spans\":[";
  for (size_t i = 0; i < trace.spans.size(); ++i) {
    const SpanRecord& s = trace.spans[i];
    if (i > 0) out += ',';
    out += "{\"name\":\"";
    out += JsonEscape(s.name);
    out += "\",\"start\":";
    AppendInt(&out, s.start_nanos);
    out += ",\"end\":";
    AppendInt(&out, s.end_nanos);
    out += ",\"parent\":";
    AppendInt(&out, s.parent);
    if (!s.annotations.empty()) {
      out += ",\"annotations\":{";
      for (size_t a = 0; a < s.annotations.size(); ++a) {
        if (a > 0) out += ',';
        out += '"';
        out += JsonEscape(s.annotations[a].first);
        out += "\":\"";
        out += JsonEscape(s.annotations[a].second);
        out += '"';
      }
      out += '}';
    }
    out += '}';
  }
  out += "]}\n";
  return out;
}

std::string TracesToJsonl(const std::vector<Trace>& traces) {
  std::string out;
  for (const Trace& t : traces) out += TraceToJsonl(t);
  return out;
}

std::string TraceToTable(const Trace& trace) {
  bench::TablePrinter table({"span", "us", "notes"});
  for (const SpanRecord& s : trace.spans) {
    std::string name(static_cast<size_t>(s.depth) * 2, ' ');
    name += s.name;
    std::string notes;
    for (size_t a = 0; a < s.annotations.size(); ++a) {
      if (a > 0) notes += ' ';
      notes += s.annotations[a].first;
      notes += '=';
      notes += s.annotations[a].second;
    }
    table.AddRow(
        {name, IntStr(s.duration_nanos() / serving::kNanosPerMicro), notes});
  }
  return table.ToString();
}

}  // namespace obs
}  // namespace slime
