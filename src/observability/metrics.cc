#include "observability/metrics.h"

#include <algorithm>

#include "common/macros.h"

namespace slime {
namespace obs {

void Histogram::Observe(int64_t value) {
  if (cell_ == nullptr) return;
  internal::HistogramCell& c = *cell_;
  // Linear scan: bucket counts are small (default 12) and the scan is
  // branch-predictable; a binary search buys nothing at this size.
  size_t idx = 0;
  const size_t n = c.bounds.size();
  while (idx < n && value > c.bounds[idx]) ++idx;
  c.buckets[idx].fetch_add(1, std::memory_order_relaxed);
  c.sum.fetch_add(value, std::memory_order_relaxed);
  // min/max via CAS loops; first observation initialises both.
  if (c.count.fetch_add(1, std::memory_order_relaxed) == 0) {
    c.min.store(value, std::memory_order_relaxed);
    c.max.store(value, std::memory_order_relaxed);
  }
  int64_t cur = c.min.load(std::memory_order_relaxed);
  while (value < cur &&
         !c.min.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = c.max.load(std::memory_order_relaxed);
  while (value > cur &&
         !c.max.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

Counter MetricsRegistry::counter(const std::string& name) {
  if (!enabled_) return Counter();
  std::lock_guard<std::mutex> lock(mu_);
  SLIME_CHECK_MSG(gauges_.find(name) == gauges_.end(),
              "metric name already registered as a gauge");
  SLIME_CHECK_MSG(histograms_.find(name) == histograms_.end(),
              "metric name already registered as a histogram");
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(name, std::make_unique<std::atomic<int64_t>>(0))
             .first;
  }
  return Counter(it->second.get());
}

Gauge MetricsRegistry::gauge(const std::string& name) {
  if (!enabled_) return Gauge();
  std::lock_guard<std::mutex> lock(mu_);
  SLIME_CHECK_MSG(counters_.find(name) == counters_.end(),
              "metric name already registered as a counter");
  SLIME_CHECK_MSG(histograms_.find(name) == histograms_.end(),
              "metric name already registered as a histogram");
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<std::atomic<int64_t>>(0))
             .first;
  }
  return Gauge(it->second.get());
}

Histogram MetricsRegistry::histogram(const std::string& name,
                                     std::vector<int64_t> bounds) {
  if (!enabled_) return Histogram();
  if (bounds.empty()) bounds = DefaultLatencyBounds();
  for (size_t i = 1; i < bounds.size(); ++i) {
    SLIME_CHECK_MSG(bounds[i - 1] < bounds[i],
                "histogram bounds must be strictly increasing");
  }
  std::lock_guard<std::mutex> lock(mu_);
  SLIME_CHECK_MSG(counters_.find(name) == counters_.end(),
              "metric name already registered as a counter");
  SLIME_CHECK_MSG(gauges_.find(name) == gauges_.end(),
              "metric name already registered as a gauge");
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    auto cell = std::make_unique<internal::HistogramCell>();
    cell->bounds = std::move(bounds);
    cell->buckets =
        std::make_unique<std::atomic<int64_t>[]>(cell->bounds.size() + 1);
    for (size_t i = 0; i <= cell->bounds.size(); ++i) {
      cell->buckets[i].store(0, std::memory_order_relaxed);
    }
    it = histograms_.emplace(name, std::move(cell)).first;
  }
  return Histogram(it->second.get());
}

int64_t HistogramPercentile(const HistogramValue& h, int64_t p) {
  if (h.count == 0) return 0;
  // rank = ceil(count * p / 100) observations, clamped to [1, count].
  int64_t rank = (h.count * p + 99) / 100;
  rank = std::max<int64_t>(1, std::min(rank, h.count));
  int64_t cumulative = 0;
  for (size_t i = 0; i < h.buckets.size(); ++i) {
    cumulative += h.buckets[i];
    if (cumulative >= rank) {
      // Report the bucket's upper bound, clamped to the true observed range
      // so p100 of a single observation equals that observation.
      const int64_t upper =
          i < h.bounds.size() ? h.bounds[i] : h.max;
      return std::max(h.min, std::min(upper, h.max));
    }
  }
  return h.max;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, cell] : counters_) {
    snap.counters.push_back(
        {name, cell->load(std::memory_order_relaxed)});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, cell] : gauges_) {
    snap.gauges.push_back({name, cell->load(std::memory_order_relaxed)});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, cell] : histograms_) {
    HistogramValue h;
    h.name = name;
    h.count = cell->count.load(std::memory_order_relaxed);
    h.sum = cell->sum.load(std::memory_order_relaxed);
    if (h.count > 0) {
      h.min = cell->min.load(std::memory_order_relaxed);
      h.max = cell->max.load(std::memory_order_relaxed);
    }
    h.bounds = cell->bounds;
    h.buckets.resize(cell->bounds.size() + 1);
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      h.buckets[i] = cell->buckets[i].load(std::memory_order_relaxed);
    }
    h.p50 = HistogramPercentile(h, 50);
    h.p95 = HistogramPercentile(h, 95);
    h.p99 = HistogramPercentile(h, 99);
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

const std::vector<int64_t>& MetricsRegistry::DefaultLatencyBounds() {
  // Powers of four from 1us: 1us, 4us, 16us, ... ~4.4s (12 buckets).
  static const std::vector<int64_t> kBounds = [] {
    std::vector<int64_t> b;
    int64_t v = 1000;
    for (int i = 0; i < 12; ++i) {
      b.push_back(v);
      v *= 4;
    }
    return b;
  }();
  return kBounds;
}

}  // namespace obs
}  // namespace slime
