#ifndef SLIME4REC_CHAOS_HARNESS_H_
#define SLIME4REC_CHAOS_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/validation.h"

namespace slime {
namespace chaos {

/// Configuration for one chaos-pipeline run. Everything downstream — which
/// corruptions are planted, where the kill lands, which serve requests run
/// slow — derives from `seed`, so a run is a pure function of (seed,
/// binary) and two same-seed runs must produce bit-identical event logs.
struct ChaosOptions {
  uint64_t seed = 1;
  /// Existing scratch directory. Every file the pipeline touches lives
  /// here and is rewritten from scratch, so a directory can be reused
  /// across runs (the bit-reproducibility check in tools/chaos_runner
  /// does exactly that).
  std::string work_dir;
  /// Epochs for the train/kill/resume stage (>= 3 so at least one
  /// snapshot completes before the injected kill).
  int64_t epochs = 4;
  /// Echo events to stdout as they happen.
  bool echo = false;
};

/// One deterministic pipeline event. `detail` never contains wall-clock
/// times, absolute paths or addresses — only data derived from the seed —
/// so the serialized log is stable across runs and across work_dirs.
struct ChaosEvent {
  std::string stage;   // "data", "train", "diverge", "serve", "cluster",
                       // "state", "repair"
  std::string kind;    // "fault", "typed_failure", "ok", "violation"
  std::string detail;
};

/// Outcome of a pipeline run. The run itself returning (rather than
/// crashing or hanging) is invariant #1; `typed_failures == faults_injected`
/// is invariant #2 (every injected fault surfaced as a typed Status, an
/// InjectedCrash, or a recorded rollback — never silent corruption);
/// the recovery checks folded into `failure` (exact quarantine accounting,
/// bit-identical resume) are invariant #3.
struct ChaosResult {
  std::vector<ChaosEvent> events;
  /// Quarantine report from the repair-mode load of the corrupted dataset.
  data::QuarantineReport quarantine;
  /// Training telemetry JSONL from the kill + resume runs (deterministic:
  /// the trainer runs on a FakeClock, so wall times are zero).
  std::string telemetry_jsonl;
  /// Anti-entropy report from the "repair" stage, one JSON object per
  /// line (`{"type":"repair",...}`): under-replication observed, hints
  /// queued/replayed, repair sweep outcome, per-segment digest
  /// convergence. Deterministic — the bit-reproducibility check in
  /// tools/chaos_runner compares it byte-for-byte across runs.
  std::string repair_report_jsonl;
  int64_t faults_injected = 0;
  int64_t typed_failures = 0;
  bool invariants_ok = false;
  /// First invariant violation, empty when invariants_ok.
  std::string failure;

  /// One line per event: "stage|kind|detail". Bit-identical across
  /// same-seed runs.
  std::string EventLog() const;
};

/// Runs the full load -> train -> checkpoint -> kill -> resume -> serve ->
/// cluster pipeline with seed-scheduled faults at every layer: planted
/// dataset corruption, injected io::Env read/write faults, a mid-write
/// process kill, a NaN divergence window, a corrupted checkpoint reload,
/// FakeClock deadline pressure on the serving path, shard kills against
/// a replicated ClusterServer (single-shard kill at R=2 must lose zero
/// admitted requests; a fully-dark segment must fail with typed
/// kUnavailable and recover through reinstatement), and kills against the
/// durable user-state store (mid-WAL-append, mid-compaction, a silently
/// torn tail, a failed fsync, and a shard kill under replicated appends —
/// every recovery must reproduce the acked set exactly), plus an
/// anti-entropy "repair" stage: a shard kill under appends followed by
/// restore with hinted-handoff replay and a digest repair sweep, after
/// which every replica's per-segment digests must be byte-identical, no
/// acked event lost and none fabricated. Returns a Status only
/// for harness-setup failures (e.g. unusable work_dir); every *injected*
/// fault is expected, recorded in the result, and never escapes.
Result<ChaosResult> RunChaosPipeline(const ChaosOptions& options);

}  // namespace chaos
}  // namespace slime

#endif  // SLIME4REC_CHAOS_HARNESS_H_
