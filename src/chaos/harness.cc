#include "chaos/harness.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <memory>
#include <utility>

#include "autograd/ops.h"
#include "cluster/cluster.h"
#include "common/random.h"
#include "data/loader.h"
#include "data/synthetic.h"
#include "io/checkpoint.h"
#include "io/env.h"
#include "models/model_factory.h"
#include "observability/telemetry.h"
#include "serving/clock.h"
#include "serving/fallback.h"
#include "serving/model_server.h"
#include "state/state_store.h"
#include "state/wal.h"
#include "train/train_state.h"
#include "train/trainer.h"

namespace slime {
namespace chaos {

namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "ok";
    case Status::Code::kInvalidArgument:
      return "invalid_argument";
    case Status::Code::kNotFound:
      return "not_found";
    case Status::Code::kIOError:
      return "io_error";
    case Status::Code::kCorruption:
      return "corruption";
    case Status::Code::kAborted:
      return "aborted";
    case Status::Code::kDeadlineExceeded:
      return "deadline_exceeded";
    case Status::Code::kResourceExhausted:
      return "resource_exhausted";
    case Status::Code::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

/// Wraps a real model and injects one window of NaN losses — the
/// divergence fault. Downstream must roll back or abort, never train on.
class NanWindowModel : public models::SequentialRecommender {
 public:
  NanWindowModel(std::shared_ptr<models::SequentialRecommender> inner,
                 int64_t poison_from, int64_t poison_count)
      : SequentialRecommender(inner->config()),
        poison_from_(poison_from),
        poison_count_(poison_count) {
    inner_ = RegisterModule("inner", std::move(inner));
  }

  autograd::Variable Loss(const data::Batch& batch) override {
    ++calls_;
    if (calls_ >= poison_from_ && calls_ < poison_from_ + poison_count_) {
      return autograd::Constant(
          Tensor::Full({1}, std::numeric_limits<float>::quiet_NaN()));
    }
    return inner_->Loss(batch);
  }

  Tensor ScoreAll(const data::Batch& batch) override {
    return inner_->ScoreAll(batch);
  }

  void Prepare(const data::SplitDataset& split) override {
    inner_->Prepare(split);
  }

  std::string name() const override { return "NanWindow"; }

 private:
  std::shared_ptr<models::SequentialRecommender> inner_;
  int64_t poison_from_;
  int64_t poison_count_;
  int64_t calls_ = 0;
};

/// Wraps a real model and advances a FakeClock by a scripted amount per
/// forward pass (the last entry repeats) — deadline pressure without
/// wall-clock sleeps, so the serve stage is exactly reproducible.
class LatencyModel : public models::SequentialRecommender {
 public:
  LatencyModel(std::shared_ptr<models::SequentialRecommender> inner,
               serving::FakeClock* clock, std::vector<int64_t> latencies)
      : SequentialRecommender(inner->config()),
        clock_(clock),
        latencies_(std::move(latencies)) {
    inner_ = RegisterModule("inner", std::move(inner));
  }

  autograd::Variable Loss(const data::Batch& batch) override {
    return inner_->Loss(batch);
  }

  Tensor ScoreAll(const data::Batch& batch) override {
    // Forward passes are serialised by the server's inference mutex, so a
    // plain counter is race-free.
    const size_t call = static_cast<size_t>(calls_++);
    if (!latencies_.empty()) {
      clock_->Advance(latencies_[std::min(latencies_.size() - 1, call)]);
    }
    return inner_->ScoreAll(batch);
  }

  /// Replaces the latency script and restarts the call counter — used
  /// after Start() so canary-validation passes don't shift the
  /// per-request alignment.
  void set_latencies(std::vector<int64_t> latencies) {
    latencies_ = std::move(latencies);
    calls_ = 0;
  }

  std::string name() const override { return "Latency"; }

 private:
  std::shared_ptr<models::SequentialRecommender> inner_;
  serving::FakeClock* clock_;
  std::vector<int64_t> latencies_;
  int64_t calls_ = 0;
};

models::ModelConfig ChaosModelConfig(const data::SplitDataset& split) {
  models::ModelConfig c;
  c.num_items = split.num_items();
  c.num_users = split.num_users();
  c.max_len = 8;
  c.hidden_dim = 16;
  c.num_layers = 1;
  c.dropout = 0.1f;  // exercises the model RNG stream across resume
  c.emb_dropout = 0.1f;
  c.seed = 5;
  return c;
}

/// The harness's running state: events, fault accounting, first failure.
struct Run {
  const ChaosOptions& options;
  ChaosResult result;

  explicit Run(const ChaosOptions& opts) : options(opts) {}

  void Event(const std::string& stage, const std::string& kind,
             const std::string& detail) {
    result.events.push_back({stage, kind, detail});
    if (options.echo) {
      std::printf("[chaos] %s|%s|%s\n", stage.c_str(), kind.c_str(),
                  detail.c_str());
    }
  }

  void Fault(const std::string& stage, const std::string& detail) {
    ++result.faults_injected;
    Event(stage, "fault", detail);
  }

  void Typed(const std::string& stage, const std::string& detail) {
    ++result.typed_failures;
    Event(stage, "typed_failure", detail);
  }

  void Violation(const std::string& stage, const std::string& detail) {
    if (result.failure.empty()) result.failure = stage + ": " + detail;
    Event(stage, "violation", detail);
  }
};

data::ValidationOptions ChaosLoadOptions(data::ValidationPolicy policy,
                                         io::Env* env) {
  data::ValidationOptions o;
  o.policy = policy;
  o.limits.max_item_id = 1000;  // low cap so a planted huge id trips it
  o.renumber_sparse_vocab = false;
  o.env = env;
  return o;
}

/// Builds the corrupted dataset text: the clean sequences re-serialised
/// with one corruption of each class planted on seed-chosen distinct
/// lines, plus one garbage-only line. Returns the planted per-class
/// deltas through `planted`.
std::string CorruptDatasetText(
    const data::InteractionDataset& clean, Rng* rng,
    std::array<int64_t, data::kNumErrorClasses>* planted) {
  planted->fill(0);
  const auto& seqs = clean.sequences();
  std::vector<std::string> lines(seqs.size());
  for (size_t u = 0; u < seqs.size(); ++u) {
    std::string& line = lines[u];
    for (size_t i = 0; i < seqs[u].size(); ++i) {
      if (i > 0) line += ' ';
      line += std::to_string(seqs[u][i]);
    }
  }

  // Five distinct victim lines, one per planted corruption.
  std::vector<size_t> victims;
  while (victims.size() < 5) {
    const size_t v = static_cast<size_t>(rng->Uniform(lines.size()));
    if (std::find(victims.begin(), victims.end(), v) == victims.end()) {
      victims.push_back(v);
    }
  }
  const auto plant = [&lines, rng](size_t victim, const std::string& token) {
    // Insert as a new token after a random existing token: dropping the
    // planted token in repair mode restores the original adjacency, so the
    // clean file's natural consecutive-repeat count is unchanged.
    std::string& line = lines[victim];
    const size_t space = std::count(line.begin(), line.end(), ' ');
    size_t pos = 0;
    const size_t skip = rng->Uniform(space + 1);
    for (size_t s = 0; s < skip; ++s) pos = line.find(' ', pos) + 1;
    const size_t end = line.find(' ', pos);
    const size_t at = end == std::string::npos ? line.size() : end;
    line.insert(at, " " + token);
  };

  using data::ErrorClass;
  plant(victims[0], "gl!tch");
  ++(*planted)[static_cast<size_t>(ErrorClass::kNonNumericToken)];
  plant(victims[1], "99999999999999999999");  // > int64: out of range
  ++(*planted)[static_cast<size_t>(ErrorClass::kItemIdOutOfRange)];
  plant(victims[2], "0");
  ++(*planted)[static_cast<size_t>(ErrorClass::kNonPositiveItemId)];
  plant(victims[3], "500000");  // fits in int64, above the 1000 cap
  ++(*planted)[static_cast<size_t>(ErrorClass::kItemIdAboveCap)];
  {
    // Duplicate the first token of the fifth victim in place.
    std::string& line = lines[victims[4]];
    const size_t end = line.find(' ');
    const std::string first =
        end == std::string::npos ? line : line.substr(0, end);
    line.insert(0, first + " ");
    ++(*planted)[static_cast<size_t>(ErrorClass::kConsecutiveRepeat)];
  }

  std::string text;
  for (const std::string& line : lines) {
    text += line;
    text += '\n';
  }
  // A line with no salvageable token at all.
  text += "?? !!\n";
  (*planted)[static_cast<size_t>(ErrorClass::kNonNumericToken)] += 2;
  ++(*planted)[static_cast<size_t>(ErrorClass::kEmptyAfterRepair)];
  return text;
}

}  // namespace

std::string ChaosResult::EventLog() const {
  std::string log;
  for (const ChaosEvent& e : events) {
    log += e.stage;
    log += '|';
    log += e.kind;
    log += '|';
    log += e.detail;
    log += '\n';
  }
  return log;
}

Result<ChaosResult> RunChaosPipeline(const ChaosOptions& options) {
  if (options.work_dir.empty()) {
    return Status::InvalidArgument("chaos work_dir is required");
  }
  if (options.epochs < 3) {
    return Status::InvalidArgument("chaos epochs must be >= 3");
  }
  Run run(options);
  Rng rng(options.seed);
  io::FaultInjectionEnv env;

  // ---- Stage 1: data — corrupt, validate, repair, read faults ----------
  data::SyntheticConfig synth;
  synth.name = "chaos";
  synth.num_users = 60;
  synth.num_items = 30;
  synth.num_categories = 4;
  synth.num_clusters = 4;
  synth.min_len = 6;
  synth.max_len = 12;
  synth.noise_prob = 0.05;
  synth.seed = options.seed * 2654435761ull + 7;
  const data::InteractionDataset clean_data = data::GenerateSynthetic(synth);

  const std::string clean_path = options.work_dir + "/chaos_clean.txt";
  const std::string corrupt_path = options.work_dir + "/chaos_corrupt.txt";
  SLIME_RETURN_IF_ERROR(data::SaveSequenceFile(clean_data, clean_path, &env));

  // Baseline: the clean file under repair gives the natural per-class
  // counts (synthetic data can contain genuine consecutive repeats).
  data::QuarantineReport baseline_report;
  Result<data::InteractionDataset> clean_loaded =
      data::LoadSequenceFileValidated(
          clean_path, "chaos-clean",
          ChaosLoadOptions(data::ValidationPolicy::kRepair, &env),
          &baseline_report);
  if (!clean_loaded.ok()) return clean_loaded.status();
  run.Event("data", "ok",
            "clean baseline repeats=" +
                std::to_string(baseline_report.count(
                    data::ErrorClass::kConsecutiveRepeat)));

  std::array<int64_t, data::kNumErrorClasses> planted;
  const std::string corrupt_text =
      CorruptDatasetText(clean_data, &rng, &planted);
  SLIME_RETURN_IF_ERROR(env.WriteFile(corrupt_path, corrupt_text));
  run.Fault("data", "planted " +
                        std::to_string(planted[0] + planted[1] + planted[2] +
                                       planted[3] + planted[4] + planted[7]) +
                        " corruptions");

  // Strict: the first planted corruption (in line order, seed-dependent)
  // must fail the load with a typed Status.
  {
    const Result<data::InteractionDataset> strict =
        data::LoadSequenceFileValidated(
            corrupt_path, "chaos-corrupt",
            ChaosLoadOptions(data::ValidationPolicy::kStrict, &env));
    if (strict.ok()) {
      run.Violation("data", "strict load of corrupted dataset succeeded");
    } else {
      run.Typed("data", std::string("strict rejected: ") +
                            CodeName(strict.status().code()));
    }
  }

  // Repair: salvages, and the quarantine must account for every planted
  // corruption exactly (on top of the clean file's natural counts).
  data::InteractionDataset repaired;
  {
    Result<data::InteractionDataset> r = data::LoadSequenceFileValidated(
        corrupt_path, "chaos-repaired",
        ChaosLoadOptions(data::ValidationPolicy::kRepair, &env),
        &run.result.quarantine);
    if (!r.ok()) {
      run.Violation("data", std::string("repair load failed: ") +
                                CodeName(r.status().code()));
      return std::move(run.result);  // nothing downstream can run
    }
    repaired = std::move(r).value();
    bool exact = true;
    for (int i = 0; i < data::kNumErrorClasses; ++i) {
      const int64_t expect = baseline_report.counts[static_cast<size_t>(i)] +
                             planted[static_cast<size_t>(i)];
      if (run.result.quarantine.counts[static_cast<size_t>(i)] != expect) {
        exact = false;
        run.Violation(
            "data",
            std::string("quarantine count mismatch for ") +
                data::ToString(static_cast<data::ErrorClass>(i)) + ": got " +
                std::to_string(
                    run.result.quarantine.counts[static_cast<size_t>(i)]) +
                " want " + std::to_string(expect));
      }
    }
    if (exact) {
      run.Event("data", "ok",
                "repair quarantined " +
                    std::to_string(run.result.quarantine.total_errors()) +
                    " offences, all planted corruptions accounted");
    }
  }

  // Media faults on the read path, through the same io::Env seam the
  // checkpoint layer uses.
  env.ArmFault(io::FaultInjectionEnv::Fault::kFailRead);
  {
    const Result<data::InteractionDataset> r =
        data::LoadSequenceFileValidated(
            clean_path, "chaos-eio",
            ChaosLoadOptions(data::ValidationPolicy::kStrict, &env));
    run.Fault("data", "injected EIO on dataset read");
    if (!r.ok()) {
      run.Typed("data",
                std::string("read failure: ") + CodeName(r.status().code()));
    } else {
      run.Violation("data", "injected read failure went unnoticed");
    }
  }
  env.ArmFault(io::FaultInjectionEnv::Fault::kCorruptRead);
  {
    const Result<data::InteractionDataset> r =
        data::LoadSequenceFileValidated(
            clean_path, "chaos-bitrot",
            ChaosLoadOptions(data::ValidationPolicy::kStrict, &env));
    run.Fault("data", "injected bit rot on dataset read");
    // ^0x40 never maps a digit to a digit, so strict must reject.
    if (!r.ok()) {
      run.Typed("data",
                std::string("bit rot: ") + CodeName(r.status().code()));
    } else {
      run.Violation("data", "bit-rotten dataset loaded as valid");
    }
  }
  env.Disarm();

  // ---- Stage 2: train -> checkpoint -> kill -> resume ------------------
  const data::SplitDataset split(repaired, 3);
  const models::ModelConfig model_config = ChaosModelConfig(split);
  serving::FakeClock train_clock;
  train::TrainConfig tc;
  tc.max_epochs = options.epochs;
  tc.batch_size = 64;
  tc.lr = 5e-3f;
  tc.patience = 100;
  tc.seed = 31 + (options.seed & 0xff);
  tc.checkpoint_every = 1;
  tc.clock = &train_clock;

  // Uninterrupted baseline for the bit-identical-resume invariant.
  train::TrainResult baseline;
  {
    auto model = models::CreateModel("FMLP-Rec", model_config);
    Result<train::TrainResult> r = train::Trainer(tc).Fit(model.get(), split);
    if (!r.ok()) return r.status();
    baseline = r.value();
    run.Event("train", "ok",
              "baseline best_epoch=" + std::to_string(baseline.best_epoch));
  }

  const std::string snapshot = train::SnapshotPath(options.work_dir);
  (void)env.RemoveFile(snapshot);
  (void)env.RemoveFile(train::BestModelPath(options.work_dir));
  obs::TrainingTelemetry telemetry(/*echo=*/false);
  {
    auto model = models::CreateModel("FMLP-Rec", model_config);
    train::TrainConfig killed = tc;
    killed.checkpoint_dir = options.work_dir;
    killed.env = &env;
    killed.telemetry = &telemetry;
    // Epoch 1 writes the snapshot and (having improved) the best-model
    // checkpoint, so killing write 3 or 4 always leaves a completed
    // snapshot behind and always lands mid-run.
    const int64_t kill_at = 3 + static_cast<int64_t>(rng.Uniform(2));
    env.ArmFault(io::FaultInjectionEnv::Fault::kCrashDuringWrite, kill_at);
    run.Fault("train",
              "kill during checkpoint write " + std::to_string(kill_at));
    bool crashed = false;
    try {
      (void)train::Trainer(killed).Fit(model.get(), split);
    } catch (const io::InjectedCrash&) {
      crashed = true;
    }
    if (crashed) {
      run.Typed("train", "process killed mid-checkpoint (InjectedCrash)");
    } else {
      run.Violation("train", "armed kill never fired");
    }
    env.Disarm();
    if (!env.FileExists(snapshot)) {
      run.Violation("train", "no completed snapshot survived the kill");
    }
  }

  if (env.FileExists(snapshot)) {
    auto model = models::CreateModel("FMLP-Rec", model_config);
    train::TrainConfig resumed_config = tc;
    resumed_config.checkpoint_dir = options.work_dir;
    resumed_config.env = &env;
    resumed_config.telemetry = &telemetry;
    resumed_config.resume_from = options.work_dir;
    Result<train::TrainResult> r =
        train::Trainer(resumed_config).Fit(model.get(), split);
    if (!r.ok()) {
      run.Violation("train", std::string("resume failed: ") +
                                 CodeName(r.status().code()));
    } else {
      const train::TrainResult& resumed = r.value();
      const bool identical =
          resumed.best_epoch == baseline.best_epoch &&
          resumed.epochs_run == baseline.epochs_run &&
          resumed.final_train_loss == baseline.final_train_loss &&
          resumed.valid.ndcg10 == baseline.valid.ndcg10 &&
          resumed.valid.hr10 == baseline.valid.hr10 &&
          resumed.test.ndcg10 == baseline.test.ndcg10 &&
          resumed.test.hr10 == baseline.test.hr10 &&
          resumed.test.mrr == baseline.test.mrr;
      if (identical) {
        run.Event("train", "ok", "resumed run bit-identical to baseline");
      } else {
        run.Violation("train", "resumed run diverged from baseline");
      }
    }
  }
  run.result.telemetry_jsonl = telemetry.jsonl();

  // ---- Stage 3: divergence (NaN window) --------------------------------
  {
    models::ModelConfig nan_config = model_config;
    nan_config.dropout = 0.0f;  // keep the wrapped model RNG-decoupled
    nan_config.emb_dropout = 0.0f;
    NanWindowModel model(models::CreateModel("SASRec", nan_config),
                         /*poison_from=*/2, /*poison_count=*/1);
    train::TrainConfig dc;
    dc.max_epochs = 3;
    dc.batch_size = 100000;  // one batch per epoch: calls count epochs
    dc.lr = 5e-3f;
    dc.patience = 100;
    dc.seed = tc.seed;
    dc.max_rollbacks = 2;
    dc.clock = &train_clock;
    run.Fault("diverge", "NaN loss window at epoch 2");
    const Result<train::TrainResult> r =
        train::Trainer(dc).Fit(&model, split);
    if (r.ok() && r.value().rollbacks > 0) {
      run.Typed("diverge", "rolled back " +
                               std::to_string(r.value().rollbacks) +
                               " time(s) and recovered");
    } else if (!r.ok() && r.status().code() == Status::Code::kAborted) {
      run.Typed("diverge", "aborted after rollback budget");
    } else {
      run.Violation("diverge", "divergence neither rolled back nor aborted");
    }
  }

  // ---- Stage 4: serve under deadline pressure + corrupt reload ---------
  {
    serving::FakeClock clock;
    serving::ModelServerOptions server_options;
    const auto factory = [&model_config]() {
      return models::CreateModel("FMLP-Rec", model_config);
    };
    serving::ModelServer server(server_options, factory, &clock, &env);
    server.set_canary_requests(train::ExportCanarySet(split, 2));
    std::vector<int64_t> counts(
        static_cast<size_t>(repaired.num_items()) + 1, 0);
    for (const auto& seq : repaired.sequences()) {
      for (const int64_t item : seq) ++counts[static_cast<size_t>(item)];
    }
    server.set_fallback(serving::PopularityFallback::FromCounts(counts));

    // Seed-chosen requests stall past the 50ms default deadline; the
    // script is installed after Start() so canary-validation passes run
    // fast and don't shift the per-request alignment.
    const int64_t kFast = serving::kNanosPerMilli;
    const int64_t kSlow = 200 * serving::kNanosPerMilli;
    constexpr int kRequests = 6;
    std::vector<bool> slow(kRequests, false);
    int slow_count = 0;
    while (slow_count < 2) {
      const size_t at = static_cast<size_t>(rng.Uniform(kRequests));
      if (!slow[at]) {
        slow[at] = true;
        ++slow_count;
      }
    }
    auto model = std::make_unique<LatencyModel>(
        models::CreateModel("FMLP-Rec", model_config), &clock,
        std::vector<int64_t>{kFast});
    LatencyModel* latency_model = model.get();
    const Status started = server.Start(std::move(model));
    if (!started.ok()) {
      run.Violation("serve", std::string("server failed to start: ") +
                                 CodeName(started.code()));
    } else {
      std::vector<int64_t> latencies;
      for (int i = 0; i < kRequests; ++i) {
        latencies.push_back(slow[static_cast<size_t>(i)] ? kSlow : kFast);
      }
      latencies.push_back(kFast);  // repeats for any extra tier retries
      latency_model->set_latencies(std::move(latencies));
      run.Fault("serve", "deadline pressure on 2 of " +
                             std::to_string(kRequests) + " requests");
      int degraded = 0;
      for (int i = 0; i < kRequests; ++i) {
        serving::ServeRequest request;
        request.history =
            split.train_region()[static_cast<size_t>(i) %
                                 static_cast<size_t>(split.num_users())];
        request.options.top_k = 5;
        request.options.exclude_seen = false;
        const Result<serving::ServeResponse> response =
            server.Serve(request);
        if (!response.ok()) {
          run.Event("serve", "ok",
                    "request " + std::to_string(i) + " -> " +
                        CodeName(response.status().code()));
          ++degraded;
        } else {
          run.Event("serve", "ok",
                    "request " + std::to_string(i) + " -> " +
                        serving::ToString(response.value().tier));
          if (response.value().tier != serving::ServeTier::kFullModel) {
            ++degraded;
          }
        }
      }
      if (degraded > 0) {
        run.Typed("serve", std::to_string(degraded) +
                               " request(s) degraded or typed-failed "
                               "under deadline pressure");
      } else {
        run.Violation("serve", "deadline pressure never surfaced");
      }

      // A corrupted checkpoint reload must roll back, not poison serving.
      const std::string ckpt = options.work_dir + "/chaos_model.ckpt";
      {
        auto fresh = factory();
        SLIME_RETURN_IF_ERROR(io::SaveCheckpoint(*fresh, ckpt, &env));
      }
      Result<std::string> bytes = env.ReadFile(ckpt);
      if (!bytes.ok()) return bytes.status();
      std::string flipped = std::move(bytes).value();
      flipped[flipped.size() / 2] ^= 0x01;
      SLIME_RETURN_IF_ERROR(env.WriteFile(ckpt, flipped));
      run.Fault("serve", "flipped one checkpoint byte before reload");
      const int64_t generation = server.generation();
      const Status reload = server.Reload(ckpt);
      if (!reload.ok() && server.generation() == generation) {
        run.Typed("serve", std::string("reload rolled back: ") +
                               CodeName(reload.code()));
      } else {
        run.Violation("serve", "corrupt checkpoint was installed");
      }
    }
  }

  // ---- Stage 5: cluster — shard kill, failover, dark segment, reload ---
  {
    serving::FakeClock clock;
    cluster::ClusterOptions copts;
    copts.num_shards = 4;
    copts.replication = 2;
    copts.seed = options.seed * 0x9E3779B97F4A7C15ull + 0xC105ull;
    const auto factory = [&model_config]() {
      return models::CreateModel("FMLP-Rec", model_config);
    };
    cluster::ClusterServer fleet(copts, factory, &clock, &env);
    fleet.set_canary_requests(train::ExportCanarySet(split, 2));
    std::vector<int64_t> counts(
        static_cast<size_t>(repaired.num_items()) + 1, 0);
    for (const auto& seq : repaired.sequences()) {
      for (const int64_t item : seq) ++counts[static_cast<size_t>(item)];
    }
    fleet.set_fallback(serving::PopularityFallback::FromCounts(counts));

    const Status started = fleet.Start();
    if (!started.ok()) {
      run.Violation("cluster", std::string("fleet failed to start: ") +
                                   CodeName(started.code()));
    } else {
      const auto serve = [&fleet, &split](uint64_t key) {
        serving::ServeRequest request;
        request.history = split.train_region()[static_cast<size_t>(
            key % static_cast<uint64_t>(split.num_users()))];
        request.options.top_k = 5;
        request.options.exclude_seen = false;
        return fleet.Serve(key, request);
      };
      // First key (scanning up from `salt`) whose routing primary is
      // `shard`. Bounded scan: with 4 shards ~1 in 4 keys qualifies.
      const auto key_with_primary = [&fleet](int64_t shard,
                                             uint64_t salt) -> uint64_t {
        for (uint64_t key = salt; key < salt + (1u << 16); ++key) {
          if (fleet.ring().Route(key)[0] == shard) return key;
        }
        return salt;  // unreachable in practice
      };

      // Phase A: healthy traffic.
      int healthy_ok = 0;
      for (int i = 0; i < 6; ++i) {
        if (serve(rng.Uniform(1u << 20)).ok()) ++healthy_ok;
      }
      if (healthy_ok == 6) {
        run.Event("cluster", "ok",
                  "4 shards R=2 started; 6/6 healthy requests served");
      } else {
        run.Violation("cluster",
                      std::to_string(6 - healthy_ok) +
                          " request(s) failed on a healthy cluster");
      }

      // Phase B: kill one seed-chosen shard mid-traffic. Every admitted
      // request must still succeed via failover to the surviving replica.
      const int64_t victim = static_cast<int64_t>(rng.Uniform(4));
      const cluster::ClusterStats before_kill = fleet.stats();
      run.Fault("cluster", "killed shard " + std::to_string(victim) +
                               " mid-traffic (replication=2)");
      fleet.KillShard(victim);
      int killed_ok = 0;
      // Three victim-primary keys drive the ejection threshold
      // deterministically; the rest is background traffic.
      for (int i = 0; i < 3; ++i) {
        const uint64_t key = key_with_primary(
            victim, static_cast<uint64_t>(rng.Uniform(1u << 20)));
        if (serve(key).ok()) ++killed_ok;
      }
      for (int i = 0; i < 5; ++i) {
        if (serve(rng.Uniform(1u << 20)).ok()) ++killed_ok;
      }
      const cluster::ClusterStats after_kill = fleet.stats();
      const int64_t failovers = after_kill.failovers - before_kill.failovers;
      if (killed_ok == 8 && failovers >= 3) {
        run.Typed("cluster", "kill absorbed: " + std::to_string(failovers) +
                                 " failover(s), zero admitted requests lost");
      } else {
        run.Violation("cluster",
                      std::to_string(8 - killed_ok) +
                          " admitted request(s) lost after single-shard "
                          "kill (failovers=" +
                          std::to_string(failovers) + ")");
      }

      // Phase C: kill the victim's co-replica too — that segment is now
      // completely dark and must fail with typed kUnavailable, and the
      // quorum rule must report the whole cluster kUnavailable.
      const uint64_t dark_key = key_with_primary(
          victim, static_cast<uint64_t>(rng.Uniform(1u << 20)));
      const int64_t partner = fleet.ring().Route(dark_key)[1];
      run.Fault("cluster", "killed shard " + std::to_string(partner) +
                               ": segment of shards {" +
                               std::to_string(victim) + "," +
                               std::to_string(partner) + "} fully dark");
      fleet.KillShard(partner);
      const Result<serving::ServeResponse> dark = serve(dark_key);
      if (!dark.ok() &&
          dark.status().code() == Status::Code::kUnavailable &&
          fleet.health() == cluster::ClusterHealth::kUnavailable) {
        run.Typed("cluster",
                  "dark segment -> unavailable; cluster health unavailable");
      } else {
        run.Violation("cluster",
                      dark.ok() ? "dark segment request succeeded"
                                : std::string("dark segment gave ") +
                                      CodeName(dark.status().code()) +
                                      ", cluster " +
                                      cluster::ToString(fleet.health()));
      }

      // Phase D: restore both shards. Restoration lifts the kill switch but
      // not the ejection — the victim must earn its way back through the
      // window-expiry -> probation -> reinstatement path.
      fleet.RestoreShard(victim);
      fleet.RestoreShard(partner);
      clock.Advance(2 * serving::kNanosPerSecond);  // every window expires
      int restored_ok = 0;
      for (int i = 0; i < 3; ++i) {
        const uint64_t key = key_with_primary(
            victim, static_cast<uint64_t>(rng.Uniform(1u << 20)));
        if (serve(key).ok()) ++restored_ok;
      }
      if (restored_ok == 3 &&
          fleet.health() == cluster::ClusterHealth::kServing) {
        run.Event("cluster", "ok",
                  "shards restored and reinstated; cluster health serving");
      } else {
        run.Violation("cluster",
                      std::string("cluster stuck ") +
                          cluster::ToString(fleet.health()) +
                          " after restore (ok=" +
                          std::to_string(restored_ok) + "/3)");
      }

      // Phase E: rolling reload under traffic. Waves must never contain
      // two replicas of the same segment, and mid-rollout requests must
      // keep succeeding.
      const std::string ckpt = options.work_dir + "/chaos_cluster.ckpt";
      {
        auto fresh = factory();
        SLIME_RETURN_IF_ERROR(io::SaveCheckpoint(*fresh, ckpt, &env));
      }
      const std::vector<std::vector<int64_t>> waves = fleet.ReloadWaves();
      bool waves_safe = true;
      for (const std::vector<int64_t>& wave : waves) {
        for (size_t a = 0; a < wave.size(); ++a) {
          for (size_t b = a + 1; b < wave.size(); ++b) {
            if (fleet.ring().SharesSegment(wave[a], wave[b])) {
              waves_safe = false;
            }
          }
        }
      }
      int rollout_ok = 0;
      int rollout_total = 0;
      const Status reload = fleet.RollingReload(
          ckpt, [&serve, &rng, &rollout_ok, &rollout_total](int64_t) {
            for (int i = 0; i < 2; ++i) {
              ++rollout_total;
              if (serve(rng.Uniform(1u << 20)).ok()) ++rollout_ok;
            }
          });
      if (reload.ok() && waves_safe && rollout_ok == rollout_total) {
        run.Event("cluster", "ok",
                  "rolling reload: " + std::to_string(waves.size()) +
                      " waves, co-replication invariant held, " +
                      std::to_string(rollout_ok) + "/" +
                      std::to_string(rollout_total) +
                      " mid-rollout requests served");
      } else {
        run.Violation(
            "cluster",
            std::string("rolling reload ") +
                (reload.ok() ? "completed" : CodeName(reload.code())) +
                (waves_safe ? "" : "; wave held two replicas of a segment") +
                "; mid-rollout ok=" + std::to_string(rollout_ok) + "/" +
                std::to_string(rollout_total));
      }
    }
  }

  // ---- Stage 6: state — durable user-state store under kills -----------
  // Four single-node faults (kill mid-WAL-append, kill mid-compaction, a
  // silently torn tail, a failed fsync) and a replicated-append shard kill.
  // The invariant throughout: every recovery reproduces the acked event
  // set exactly — loss is only ever the in-flight victim, and it is
  // truncated with typed byte accounting, never silently.
  {
    const std::string sdir = options.work_dir + "/state_single";
    for (const char* file : {"/state.wal", "/state.snapshot",
                             "/state.wal.tmp", "/state.snapshot.tmp"}) {
      (void)env.RemoveFile(sdir + file);
    }
    state::StateStoreOptions sopts;
    sopts.dir = sdir;
    sopts.sync = state::SyncMode::kAlways;
    sopts.snapshot_every_records = 0;  // compaction driven explicitly below
    sopts.env = &env;

    // Every event acked to a caller, for exact-loss checks after recovery.
    std::map<uint64_t, std::vector<int64_t>> acked;
    const auto append_acked = [&acked](state::StateStore* store,
                                       uint64_t user, int64_t item) {
      if (!store->Append(user, {item}).ok()) return false;
      acked[user].push_back(item);
      return true;
    };
    const auto acked_intact = [&acked](state::StateStore* store) {
      for (const auto& entry : acked) {
        if (store->History(entry.first) != entry.second) return false;
      }
      return true;
    };
    // WAL frame size of a single-item event: header + user + count + item.
    const int64_t frame = static_cast<int64_t>(
        state::WriteAheadLog::kFrameHeader + 8 + 4 + 8);

    // Fault 1: kill the process mid-WAL-append, at a seed-chosen byte
    // offset strictly inside the victim's frame.
    {
      Result<std::unique_ptr<state::StateStore>> opened =
          state::StateStore::Open(sopts);
      if (!opened.ok()) {
        run.Violation("state", std::string("store failed to open: ") +
                                   CodeName(opened.status().code()));
      } else {
        std::unique_ptr<state::StateStore> store = std::move(opened.value());
        bool seeded = true;
        for (int e = 0; e < 8 && seeded; ++e) {
          seeded = append_acked(store.get(), rng.Uniform(4),
                                static_cast<int64_t>(rng.UniformInt(1, 999)));
        }
        if (!seeded) run.Violation("state", "seed append refused");
        const int64_t torn = static_cast<int64_t>(
            rng.Uniform(static_cast<uint64_t>(frame)));
        env.set_torn_tail_bytes(torn);
        env.ArmFault(io::FaultInjectionEnv::Fault::kCrashDuringWrite);
        run.Fault("state", "killed process mid-WAL-append after " +
                               std::to_string(torn) + " of " +
                               std::to_string(frame) + " frame bytes");
        bool crashed = false;
        try {
          (void)store->Append(9000, {777});
        } catch (const io::InjectedCrash&) {
          crashed = true;
        }
        env.set_torn_tail_bytes(-1);
        env.Disarm();
        if (crashed) {
          run.Typed("state", "mid-append kill surfaced as InjectedCrash");
        } else {
          run.Violation("state", "mid-append kill did not surface");
        }
        // The store object dies with the "process" here.
      }
    }

    // Recovery 1, then fault 2: kill mid-compaction (the snapshot stage
    // write never reaches the rename, so the WAL still covers everything).
    {
      Result<std::unique_ptr<state::StateStore>> opened =
          state::StateStore::Open(sopts);
      if (!opened.ok() || !acked_intact(opened.value().get()) ||
          !opened.value()->History(9000).empty()) {
        run.Violation("state", "recovery after mid-append kill lost or "
                               "fabricated acked events");
      } else {
        const state::RecoveryReport& report = opened.value()->recovery();
        run.Event("state", "ok",
                  "recovered after mid-append kill: " +
                      std::to_string(report.wal_records_replayed) +
                      " records replayed, " +
                      std::to_string(report.wal_bytes_truncated) +
                      " torn byte(s) truncated, zero acked loss");
        env.ArmFault(io::FaultInjectionEnv::Fault::kCrashDuringWrite);
        run.Fault("state", "killed process mid-snapshot-compaction");
        bool crashed = false;
        try {
          (void)opened.value()->Compact();
        } catch (const io::InjectedCrash&) {
          crashed = true;
        }
        env.Disarm();
        if (crashed) {
          run.Typed("state", "mid-compaction kill surfaced as InjectedCrash");
        } else {
          run.Violation("state", "mid-compaction kill did not surface");
        }
      }
    }

    // Recovery 2 + a clean compaction, then fault 3: the disk lies — an
    // acked append whose tail never hit the platter (kTornTailWrite).
    int64_t lied_bytes = 0;
    {
      Result<std::unique_ptr<state::StateStore>> opened =
          state::StateStore::Open(sopts);
      if (!opened.ok() || !acked_intact(opened.value().get())) {
        run.Violation("state",
                      "recovery after mid-compaction kill lost acked events");
      } else {
        std::unique_ptr<state::StateStore> store = std::move(opened.value());
        const Status compacted = store->Compact();
        if (!compacted.ok() || store->wal_records() != 0) {
          run.Violation("state", std::string("clean compaction failed: ") +
                                     CodeName(compacted.code()));
        } else {
          run.Event("state", "ok",
                    "clean compaction: snapshot covers " +
                        std::to_string(store->num_users()) +
                        " users, WAL truncated");
        }
        lied_bytes = 1 + static_cast<int64_t>(
                             rng.Uniform(static_cast<uint64_t>(frame - 1)));
        env.set_torn_tail_bytes(lied_bytes);
        env.ArmFault(io::FaultInjectionEnv::Fault::kTornTailWrite);
        run.Fault("state", "disk lied: append acked but only " +
                               std::to_string(lied_bytes) + " of " +
                               std::to_string(frame) +
                               " frame bytes persisted");
        if (!store->Append(9000, {555}).ok()) {
          run.Violation("state", "lying-disk append refused (fault should "
                                 "be silent at append time)");
        }
        env.set_torn_tail_bytes(-1);
      }
    }

    // Recovery 3 must detect the lie with exact accounting; fault 4: a
    // failed fsync barrier must refuse the ack and leave the store usable.
    {
      Result<std::unique_ptr<state::StateStore>> opened =
          state::StateStore::Open(sopts);
      if (!opened.ok()) {
        run.Violation("state", std::string("recovery after torn tail: ") +
                                   CodeName(opened.status().code()));
      } else {
        std::unique_ptr<state::StateStore> store = std::move(opened.value());
        const state::RecoveryReport& report = store->recovery();
        if (acked_intact(store.get()) && store->History(9000).empty() &&
            report.wal_torn && report.wal_bytes_truncated == lied_bytes &&
            report.tail_status.code() == Status::Code::kCorruption) {
          run.Typed("state", "silent torn tail detected on recovery: " +
                                 std::to_string(report.wal_bytes_truncated) +
                                 " byte(s) truncated, typed corruption");
        } else {
          run.Violation("state", "silent torn tail not detected or "
                                 "mis-accounted on recovery");
        }
        env.ArmFault(io::FaultInjectionEnv::Fault::kFailSync);
        run.Fault("state", "fsync failure during append barrier");
        const Result<state::AppendAck> refused = store->Append(2, {424242});
        if (!refused.ok() && store->History(2) == acked[2]) {
          run.Typed("state", std::string("failed sync refused the ack: ") +
                                 CodeName(refused.status().code()));
        } else {
          run.Violation("state",
                        "failed sync was acked or applied in-memory");
        }
        if (!append_acked(store.get(), 2, 434343) ||
            !acked_intact(store.get())) {
          run.Violation("state", "store unusable after sync failure");
        } else {
          run.Event("state", "ok",
                    "single-node store survived 4 faults: " +
                        std::to_string(store->num_users()) +
                        " users, last_seq " +
                        std::to_string(store->last_seq()) +
                        ", zero acked-event loss");
        }
      }
    }

    // Fault 5: replicated appends across a cluster shard kill. The acked
    // write must survive on the other replica, and the restored shard must
    // recover exactly its own durable prefix.
    {
      const std::string cdir = options.work_dir + "/state_cluster";
      for (int s = 0; s < 3; ++s) {
        for (const char* file : {"/state.wal", "/state.snapshot",
                                 "/state.wal.tmp", "/state.snapshot.tmp"}) {
          (void)env.RemoveFile(cdir + "/shard_" + std::to_string(s) + file);
        }
      }
      serving::FakeClock clock;
      cluster::ClusterOptions copts;
      copts.num_shards = 3;
      copts.replication = 2;
      copts.seed = options.seed * 0x9E3779B97F4A7C15ull + 0x57A7Eull;
      copts.state_dir = cdir;
      copts.state_sync = state::SyncMode::kAlways;
      const auto factory = [&model_config]() {
        return models::CreateModel("FMLP-Rec", model_config);
      };
      cluster::ClusterServer fleet(copts, factory, &clock, &env);
      const Status started = fleet.Start();
      if (!started.ok()) {
        run.Violation("state", std::string("stateful fleet failed to "
                                           "start: ") +
                                   CodeName(started.code()));
      } else {
        const uint64_t user = rng.Uniform(1u << 20);
        // Session histories are validated against the model vocabulary.
        const int64_t first_item =
            static_cast<int64_t>(rng.UniformInt(1, model_config.num_items));
        const int64_t second_item =
            static_cast<int64_t>(rng.UniformInt(1, model_config.num_items));
        serving::ServeRequest session;
        session.options.top_k = 5;
        session.options.exclude_seen = false;
        const int64_t primary = fleet.ring().Route(user)[0];
        bool cluster_ok = fleet.AppendEvent(user, {first_item}).ok() &&
                          fleet.ServeSession(user, session).ok();
        run.Fault("state", "killed primary replica of a user's segment "
                           "under replicated appends (R=2)");
        fleet.KillShard(primary);
        if (cluster_ok && fleet.AppendEvent(user, {second_item}).ok() &&
            fleet.ServeSession(user, session).ok()) {
          // The ack must also confess its replication level: one append
          // missed the dead primary, so exactly one under-replicated
          // append has been counted.
          if (fleet.stats().underreplicated_appends == 1) {
            run.Typed("state", "replicated append survived the shard kill "
                               "(acked by the surviving replica, counted "
                               "under-replicated)");
          } else {
            run.Violation("state",
                          "append that missed a dead replica was not "
                          "counted under-replicated (count " +
                              std::to_string(
                                  fleet.stats().underreplicated_appends) +
                              ", expected 1)");
            cluster_ok = false;
          }
        } else {
          run.Violation("state",
                        "append or session serve lost to a single-shard "
                        "kill at R=2");
          cluster_ok = false;
        }
        fleet.RestoreShard(primary);
        const state::StateStore* restored =
            fleet.shard_server(primary)->state_store();
        const bool prefix_ok =
            restored != nullptr &&
            restored->History(user) == std::vector<int64_t>{first_item};
        const std::string ckpt =
            options.work_dir + "/chaos_state_cluster.ckpt";
        Status reload = Status::OK();
        {
          auto fresh = factory();
          reload = io::SaveCheckpoint(*fresh, ckpt, &env);
        }
        if (reload.ok()) reload = fleet.RollingReload(ckpt);
        const state::StateStore* survivor_store =
            fleet.shard_server(fleet.ring().Route(user)[1])->state_store();
        const bool survived_reload =
            reload.ok() && survivor_store != nullptr &&
            survivor_store->History(user) ==
                (std::vector<int64_t>{first_item, second_item});
        if (cluster_ok && prefix_ok && survived_reload) {
          run.Event("state", "ok",
                    "restored shard recovered its durable prefix; state "
                    "survived a rolling reload");
        } else if (cluster_ok) {
          run.Violation("state",
                        prefix_ok ? "state lost across rolling reload"
                                  : "restored shard recovered the wrong "
                                    "durable prefix");
        }
      }
    }
  }

  // ---- Stage 7: repair — anti-entropy closes a kill-induced fork --------
  // Kill a primary, let appends miss it, restore with hinted-handoff
  // replay plus a digest repair sweep, and require full convergence:
  // per-segment digests byte-identical across replicas, zero acked events
  // lost, zero fabricated (the repaired history is exactly the acked
  // sequence), and the hint backlog drained to zero. Every count below is
  // seed-derived, so the emitted repair report is byte-identical across
  // same-seed runs (tools/chaos_runner double-runs and compares).
  {
    const std::string rdir = options.work_dir + "/state_repair";
    for (int s = 0; s < 3; ++s) {
      for (const char* file : {"/state.wal", "/state.snapshot",
                               "/state.wal.tmp", "/state.snapshot.tmp"}) {
        (void)env.RemoveFile(rdir + "/shard_" + std::to_string(s) + file);
      }
    }
    serving::FakeClock clock;
    cluster::ClusterOptions copts;
    copts.num_shards = 3;
    copts.replication = 2;
    copts.seed = options.seed * 0x9E3779B97F4A7C15ull + 0xA9E17ull;
    copts.state_dir = rdir;
    copts.state_sync = state::SyncMode::kAlways;
    copts.hinted_handoff = true;
    copts.handoff.max_hints_per_shard = 64;
    copts.repair_on_restore = true;
    const auto factory = [&model_config]() {
      return models::CreateModel("FMLP-Rec", model_config);
    };
    cluster::ClusterServer fleet(copts, factory, &clock, &env);
    const Status started = fleet.Start();
    std::string report;
    if (!started.ok()) {
      run.Violation("repair", std::string("stateful fleet failed to "
                                          "start: ") +
                                  CodeName(started.code()));
    } else {
      const uint64_t user = rng.Uniform(1u << 20);
      std::vector<int64_t> acked_items;
      const auto append_one = [&fleet, &rng, &model_config, &acked_items,
                               user]() {
        const int64_t item =
            static_cast<int64_t>(rng.UniformInt(1, model_config.num_items));
        Result<state::AppendAck> ack = fleet.AppendEvent(user, {item});
        if (ack.ok()) acked_items.push_back(item);
        return ack;
      };
      const int64_t primary = fleet.ring().Route(user)[0];
      const Result<state::AppendAck> seeded = append_one();
      bool stage_ok = seeded.ok() && seeded.value().replica_acks == 2;
      if (!stage_ok) {
        run.Violation("repair", "seed append was not acked by both "
                                "replicas");
      }
      const int64_t missed = 2 + static_cast<int64_t>(rng.Uniform(3));
      run.Fault("repair",
                "killed primary replica; " + std::to_string(missed) +
                    " subsequent appends will miss it");
      fleet.KillShard(primary);
      for (int64_t i = 0; stage_ok && i < missed; ++i) {
        const Result<state::AppendAck> ack = append_one();
        // The survivor acks alone, and the ack says so.
        if (!ack.ok() || ack.value().replica_acks != 1) {
          run.Violation("repair", "append during the kill was lost or "
                                  "mis-reported its replica acks");
          stage_ok = false;
        }
      }
      const cluster::ClusterStats mid = fleet.stats();
      if (stage_ok && mid.underreplicated_appends == missed &&
          mid.hints_pending == missed && mid.hints_dropped == 0) {
        run.Typed("repair",
                  "appends acked under-replicated (" +
                      std::to_string(mid.underreplicated_appends) +
                      " counted) with " +
                      std::to_string(mid.hints_pending) +
                      " hint(s) queued for the dead shard");
      } else if (stage_ok) {
        run.Violation("repair",
                      "under-replication mis-counted or hints not queued "
                      "(underreplicated " +
                          std::to_string(mid.underreplicated_appends) +
                          ", pending " + std::to_string(mid.hints_pending) +
                          ", expected " + std::to_string(missed) + ")");
        stage_ok = false;
      }
      report += "{\"type\":\"repair\",\"event\":\"underreplicated\","
                "\"appends\":" +
                std::to_string(mid.underreplicated_appends) +
                ",\"hints_pending\":" + std::to_string(mid.hints_pending) +
                "}\n";
      const Status restored = fleet.RestoreShard(primary);
      const cluster::ClusterStats after = fleet.stats();
      if (stage_ok && restored.ok() && after.hints_pending == 0 &&
          after.hints_replayed == missed && after.hints_dropped == 0 &&
          after.repair_conflicts == 0) {
        run.Event("repair", "ok",
                  "restore replayed " +
                      std::to_string(after.hints_replayed) +
                      " hint(s) and swept digests (" +
                      std::to_string(after.repair_items_transferred) +
                      " item(s) left for the sweep); backlog drained to 0");
      } else if (stage_ok) {
        run.Violation("repair",
                      std::string("restore did not drain the backlog "
                                  "cleanly: ") +
                          CodeName(restored.code()) + ", pending " +
                          std::to_string(after.hints_pending) +
                          ", replayed " +
                          std::to_string(after.hints_replayed) +
                          ", conflicts " +
                          std::to_string(after.repair_conflicts));
        stage_ok = false;
      }
      report += "{\"type\":\"repair\",\"event\":\"restore\","
                "\"hints_replayed\":" +
                std::to_string(after.hints_replayed) +
                ",\"hints_dropped\":" + std::to_string(after.hints_dropped) +
                ",\"sweep_items_transferred\":" +
                std::to_string(after.repair_items_transferred) +
                ",\"conflicts\":" + std::to_string(after.repair_conflicts) +
                ",\"hints_pending\":" + std::to_string(after.hints_pending) +
                "}\n";
      // Convergence: the acked history must be reproduced exactly on
      // every replica (zero loss, zero fabrication), and every segment's
      // digest enumeration must be byte-identical across its replicas.
      bool histories_ok = stage_ok;
      for (int64_t s : fleet.ring().Route(user)) {
        const state::StateStore* store =
            fleet.shard_server(s)->state_store();
        if (store == nullptr || store->History(user) != acked_items) {
          histories_ok = false;
        }
      }
      const auto segment_digests = [&fleet](int64_t shard,
                                            int64_t segment) {
        const state::StateStore* store =
            fleet.shard_server(shard)->state_store();
        std::string bytes;
        if (store == nullptr) return bytes;
        const cluster::ShardRing& ring = fleet.ring();
        for (const state::UserDigest& d : store->EnumerateDigests(
                 [&ring, segment](uint64_t user_id) {
                   return ring.SegmentOf(user_id) == segment;
                 })) {
          bytes += std::to_string(d.user_id) + ":" +
                   std::to_string(d.items_total) + ":" +
                   std::to_string(d.crc) + ";";
        }
        return bytes;
      };
      int64_t segments_checked = 0;
      int64_t segments_diverged = 0;
      for (int64_t seg = 0; seg < fleet.ring().num_segments(); ++seg) {
        const std::vector<int64_t>& reps = fleet.ring().Replicas(seg);
        const std::string first = segment_digests(reps[0], seg);
        ++segments_checked;
        for (size_t r = 1; r < reps.size(); ++r) {
          if (segment_digests(reps[r], seg) != first) ++segments_diverged;
        }
      }
      if (stage_ok && histories_ok && segments_diverged == 0) {
        run.Event("repair", "ok",
                  "replicas converged: " +
                      std::to_string(segments_checked) +
                      " segment digest set(s) byte-identical, acked "
                      "history exact on every replica");
      } else if (stage_ok) {
        run.Violation("repair",
                      histories_ok
                          ? std::to_string(segments_diverged) +
                                " segment digest set(s) still diverged "
                                "after repair"
                          : "repaired history is not the exact acked "
                            "sequence (lost or fabricated events)");
      }
      report += "{\"type\":\"repair\",\"event\":\"converged\","
                "\"segments_checked\":" +
                std::to_string(segments_checked) +
                ",\"segments_diverged\":" +
                std::to_string(segments_diverged) + ",\"acked_history_exact\":" +
                (histories_ok ? "true" : "false") + "}\n";
    }
    run.result.repair_report_jsonl = report;
  }

  // ---- Invariants -------------------------------------------------------
  if (run.result.typed_failures != run.result.faults_injected) {
    run.Violation(
        "chaos", "typed_failures " +
                     std::to_string(run.result.typed_failures) +
                     " != faults_injected " +
                     std::to_string(run.result.faults_injected));
  }
  run.result.invariants_ok = run.result.failure.empty();
  run.Event("chaos", run.result.invariants_ok ? "ok" : "violation",
            "faults=" + std::to_string(run.result.faults_injected) +
                " typed=" + std::to_string(run.result.typed_failures) +
                " invariants=" +
                (run.result.invariants_ok ? "ok" : run.result.failure));
  return std::move(run.result);
}

}  // namespace chaos
}  // namespace slime
