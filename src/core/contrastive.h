#ifndef SLIME4REC_CORE_CONTRASTIVE_H_
#define SLIME4REC_CORE_CONTRASTIVE_H_

#include "autograd/variable.h"

namespace slime {
namespace core {

/// L2-normalises the rows of a (B, d) Variable (differentiably).
autograd::Variable NormalizeRows(const autograd::Variable& x,
                                 float eps = 1e-8f);

/// Symmetric InfoNCE between two views (Eqs. 33-34): rows of `h1` and `h2`
/// are positives of each other; every other row of the concatenated
/// 2B-view batch is a negative. Similarity is the cosine scaled by
/// 1/temperature. Returns the mean loss over the 2B anchors (which covers
/// both directions of Eq. 33).
autograd::Variable InfoNceLoss(const autograd::Variable& h1,
                               const autograd::Variable& h2,
                               float temperature);

}  // namespace core
}  // namespace slime

#endif  // SLIME4REC_CORE_CONTRASTIVE_H_
