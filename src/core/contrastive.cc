#include "core/contrastive.h"

#include <vector>

#include "autograd/ops.h"

namespace slime {
namespace core {

autograd::Variable NormalizeRows(const autograd::Variable& x, float eps) {
  using autograd::AddScalar;
  using autograd::Div;
  using autograd::Mul;
  using autograd::Sqrt;
  using autograd::SumAxis;
  autograd::Variable sq = Mul(x, x);
  autograd::Variable norm = Sqrt(AddScalar(SumAxis(sq, -1, true), eps));
  return Div(x, norm);  // (B,d) / (B,1) broadcasts
}

autograd::Variable InfoNceLoss(const autograd::Variable& h1,
                               const autograd::Variable& h2,
                               float temperature) {
  using autograd::AddConst;
  using autograd::Concat;
  using autograd::CrossEntropy;
  using autograd::MatMulTransB;
  using autograd::MulScalar;
  using autograd::Variable;
  SLIME_CHECK_EQ(h1.value().dim(), 2);
  SLIME_CHECK(h1.value().shape() == h2.value().shape());
  SLIME_CHECK_GT(temperature, 0.0f);
  const int64_t b = h1.size(0);
  Variable z = NormalizeRows(Concat({h1, h2}, 0));  // (2B, d)
  Variable sim = MulScalar(MatMulTransB(z, z), 1.0f / temperature);
  // Self-similarities are excluded from the denominator.
  Tensor diag_mask({2 * b, 2 * b});
  for (int64_t i = 0; i < 2 * b; ++i) diag_mask.data()[i * 2 * b + i] = -1e9f;
  sim = AddConst(sim, diag_mask);
  // Row i's positive is its counterpart view i +/- B.
  std::vector<int64_t> targets(2 * b);
  for (int64_t i = 0; i < b; ++i) {
    targets[i] = i + b;
    targets[i + b] = i;
  }
  return CrossEntropy(sim, targets);
}

}  // namespace core
}  // namespace slime
