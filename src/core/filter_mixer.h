#ifndef SLIME4REC_CORE_FILTER_MIXER_H_
#define SLIME4REC_CORE_FILTER_MIXER_H_

#include <memory>

#include "core/frequency_ramp.h"
#include "core/learnable_filter.h"
#include "nn/dropout.h"
#include "nn/feed_forward.h"
#include "nn/layer_norm.h"
#include "nn/module.h"

namespace slime {
namespace core {

/// Options of the filter mixer (Sec. III-B). The ablation flags map to the
/// paper's variants: use_dynamic=false is SLIME4Rec_w/oD, use_static=false
/// is SLIME4Rec_w/oS.
struct FilterMixerOptions {
  /// Dynamic filter size ratio alpha (Eq. 19), in (0, 1]. alpha = 1 with
  /// use_static = false degenerates to FMLP-Rec's global filter.
  double alpha = 0.4;
  /// Mixing coefficient gamma of Eq. 26 between DFS and SFS outputs.
  double gamma = 0.5;
  bool use_dynamic = true;
  bool use_static = true;
  /// Slide directions (Table IV); mode 4 ("<-", "<-") is the paper's best.
  SlideDirection dynamic_direction = SlideDirection::kHighToLow;
  SlideDirection static_direction = SlideDirection::kHighToLow;
  /// When true the DFS/SFS frequency windows are disabled and the
  /// learnable filters cover the whole spectrum (used by FMLP-Rec).
  bool full_spectrum = false;
};

/// One filter-mixer sublayer (the self-attention replacement): FFT ->
/// DFS/SFS filtering with the frequency-ramp windows -> spectrum mixing
/// (Eq. 26) -> inverse FFT -> dropout + residual + LayerNorm (Eq. 28).
class FilterMixerLayer : public nn::Module {
 public:
  FilterMixerLayer(int64_t seq_len, int64_t dim, int64_t num_layers,
                   int64_t layer_index, const FilterMixerOptions& options,
                   float dropout, Rng* rng);

  /// x: (B, N, d) time-domain features H^l; returns H-hat^l (Eq. 28).
  autograd::Variable Forward(const autograd::Variable& x, Rng* rng) const;

  const LearnableFilter& dynamic_filter() const { return *dynamic_filter_; }
  const LearnableFilter& static_filter() const { return *static_filter_; }
  FilterWindow dynamic_window() const { return dynamic_window_; }
  FilterWindow static_window() const { return static_window_; }

  /// Amplitude of the learned filter restricted to its window, shape
  /// (M, d); rows outside the window are zero. Fig. 7's heatmaps.
  Tensor MaskedDynamicAmplitude() const;
  Tensor MaskedStaticAmplitude() const;

 private:
  int64_t seq_len_;
  FilterMixerOptions options_;
  FilterWindow dynamic_window_;
  FilterWindow static_window_;
  Tensor dynamic_mask_;  // undefined when full_spectrum
  Tensor static_mask_;
  std::shared_ptr<LearnableFilter> dynamic_filter_;
  std::shared_ptr<LearnableFilter> static_filter_;
  std::shared_ptr<nn::Dropout> dropout_;
  std::shared_ptr<nn::LayerNorm> layer_norm_;
};

/// A full encoder block: filter mixer followed by the point-wise FFN with
/// the densely residual combination of Eq. 30:
///   H^{l+1} = LayerNorm(H^l + H-hat^l + Dropout(FFN(H-hat^l))).
class FilterMixerBlock : public nn::Module {
 public:
  FilterMixerBlock(int64_t seq_len, int64_t dim, int64_t num_layers,
                   int64_t layer_index, const FilterMixerOptions& options,
                   float dropout, Rng* rng);

  autograd::Variable Forward(const autograd::Variable& x, Rng* rng) const;

  const FilterMixerLayer& mixer() const { return *mixer_; }

 private:
  std::shared_ptr<FilterMixerLayer> mixer_;
  std::shared_ptr<nn::FeedForward> ffn_;
  std::shared_ptr<nn::LayerNorm> layer_norm_;
};

}  // namespace core
}  // namespace slime

#endif  // SLIME4REC_CORE_FILTER_MIXER_H_
