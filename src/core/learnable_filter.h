#ifndef SLIME4REC_CORE_LEARNABLE_FILTER_H_
#define SLIME4REC_CORE_LEARNABLE_FILTER_H_

#include "fft/spectral_ops.h"
#include "nn/module.h"

namespace slime {
namespace core {

/// A learnable complex filter W in C^{M x d} (Eqs. 14/21/25). Applying it
/// to a spectrum performs the complex elementwise product X (.) sigma (.)
/// W, where sigma is a constant 0/1 frequency-window mask supplied by the
/// FrequencyRamp (an undefined Tensor disables masking, the FMLP-Rec
/// alpha = 1 case).
class LearnableFilter : public nn::Module {
 public:
  /// Complex weights initialised N(0, init_stddev) per component, matching
  /// the FMLP-Rec reference initialisation (0.02).
  LearnableFilter(int64_t num_bins, int64_t dim, Rng* rng,
                  float init_stddev = 0.02f);

  /// Filters `spectrum` (shapes (B, M, d)): returns sigma (.) (X (.) W).
  fft::SpectralPair Apply(const fft::SpectralPair& spectrum,
                          const Tensor& mask) const;

  /// Amplitude |W| of the learned filter, shape (M, d); used by the
  /// Fig. 7 visualisation bench.
  Tensor Amplitude() const;

  const autograd::Variable& weight_re() const { return w_re_; }
  const autograd::Variable& weight_im() const { return w_im_; }

 private:
  autograd::Variable w_re_;  // (M, d)
  autograd::Variable w_im_;  // (M, d)
};

}  // namespace core
}  // namespace slime

#endif  // SLIME4REC_CORE_LEARNABLE_FILTER_H_
