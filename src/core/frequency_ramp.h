#ifndef SLIME4REC_CORE_FREQUENCY_RAMP_H_
#define SLIME4REC_CORE_FREQUENCY_RAMP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace slime {
namespace core {

/// Direction in which a filter window slides across layers (Table IV).
/// Frequency index 0 is the lowest (DC) bin and M-1 the highest, so
/// kHighToLow (the paper's "<-", mode-4 default for both modules) starts at
/// the high-frequency end in layer 0 and reaches the low-frequency end in
/// layer L-1.
enum class SlideDirection {
  kHighToLow,  // "<-": layer 0 covers high frequencies, layer L-1 low
  kLowToHigh,  // "->": the reverse ordering
};

const char* ToString(SlideDirection d);

/// A half-open frequency window [begin, end) over the M rFFT bins.
struct FilterWindow {
  int64_t begin = 0;
  int64_t end = 0;
  int64_t size() const { return end - begin; }
  bool Contains(int64_t w) const { return w >= begin && w < end; }
};

/// The frequency ramp structure (Sec. III-B2). Computes, per layer, the
/// window selected by the Dynamic Frequency Selection module (Eqs. 16-20)
/// and the Static Frequency Split module (Eqs. 22-24).
class FrequencyRamp {
 public:
  /// `num_bins` is M (Eq. 13, see fft::RfftBins); `alpha` the dynamic
  /// filter size ratio (Eq. 19) in (0, 1].
  FrequencyRamp(int64_t num_bins, int64_t num_layers, double alpha,
                SlideDirection dynamic_direction,
                SlideDirection static_direction);

  /// DFS window of `layer` (Eqs. 17-18 for "<-"; the "->" ordering is the
  /// layer-reversed list, as the paper proves sigma_-> = inverse(sigma_<-)).
  FilterWindow DynamicWindow(int64_t layer) const;

  /// SFS window of `layer` (Eqs. 23-24): an exact L-way partition of the
  /// spectrum (beta = 1/L, Eq. 22) when L <= M. Every layer keeps at least
  /// one bin; with more layers than bins (L > M) a disjoint partition is
  /// impossible, so windows overlap on single bins instead of collapsing
  /// to empty (all-zero spectrum masks).
  FilterWindow StaticWindow(int64_t layer) const;

  /// 0/1 mask tensor of shape (num_bins, 1), broadcastable over (B, M, d)
  /// spectra, realising the indicator sigma(omega) of Eq. 15.
  Tensor WindowMask(const FilterWindow& window) const;

  int64_t num_bins() const { return num_bins_; }
  int64_t num_layers() const { return num_layers_; }
  double alpha() const { return alpha_; }
  /// beta = 1/L (Eq. 22).
  double beta() const { return 1.0 / static_cast<double>(num_layers_); }
  /// The slide step of Eq. 20 ((1-alpha)M / (L-1); 0 when L == 1 or
  /// alpha == 1, i.e. the FMLP-Rec degenerate case).
  double step() const;

 private:
  int64_t num_bins_;
  int64_t num_layers_;
  double alpha_;
  SlideDirection dynamic_direction_;
  SlideDirection static_direction_;
};

}  // namespace core
}  // namespace slime

#endif  // SLIME4REC_CORE_FREQUENCY_RAMP_H_
