#include "core/learnable_filter.h"

#include <cmath>

#include "autograd/ops.h"
#include "compute/thread_pool.h"
#include "nn/init.h"

namespace slime {
namespace core {

LearnableFilter::LearnableFilter(int64_t num_bins, int64_t dim, Rng* rng,
                                 float init_stddev) {
  w_re_ = RegisterParameter(
      "w_re",
      autograd::Param(nn::NormalInit({num_bins, dim}, rng, init_stddev)));
  w_im_ = RegisterParameter(
      "w_im",
      autograd::Param(nn::NormalInit({num_bins, dim}, rng, init_stddev)));
}

fft::SpectralPair LearnableFilter::Apply(const fft::SpectralPair& spectrum,
                                         const Tensor& mask) const {
  fft::SpectralPair filtered =
      fft::ComplexMul(spectrum, fft::SpectralPair{w_re_, w_im_});
  if (mask.defined()) {
    filtered = fft::MaskSpectrum(filtered, mask);
  }
  return filtered;
}

Tensor LearnableFilter::Amplitude() const {
  const Tensor& re = w_re_.value();
  const Tensor& im = w_im_.value();
  Tensor amp(re.shape());
  const float* pr = re.data();
  const float* pi = im.data();
  float* pa = amp.data();
  compute::ParallelFor(0, amp.numel(), compute::kElementwiseGrain,
                       [&](int64_t lo, int64_t hi) {
                         for (int64_t i = lo; i < hi; ++i)
                           pa[i] = std::sqrt(pr[i] * pr[i] + pi[i] * pi[i]);
                       });
  return amp;
}

}  // namespace core
}  // namespace slime
