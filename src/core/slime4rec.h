#ifndef SLIME4REC_CORE_SLIME4REC_H_
#define SLIME4REC_CORE_SLIME4REC_H_

#include <memory>
#include <string>
#include <vector>

#include "core/filter_mixer.h"
#include "models/recommender.h"
#include "nn/embedding.h"

namespace slime {
namespace core {

/// Full configuration of SLIME4Rec: the shared sequential-model options
/// plus the filter-mixer options and the contrastive-learning switch.
struct Slime4RecConfig : models::ModelConfig {
  FilterMixerOptions mixer;
  /// Enables the contrastive objective of Eqs. 33-36; disabling yields the
  /// SLIME4Rec_w/oC ablation variant.
  bool use_contrastive = true;
};

/// The paper's model (Sec. III): an attention-free transformer encoder
/// whose self-attention sublayer is replaced by the slide filter mixer,
/// trained with next-item cross-entropy plus the DuoRec-style contrastive
/// regulariser (unsupervised dropout views + supervised same-target
/// positives, in-batch negatives).
class Slime4Rec : public models::SequentialRecommender {
 public:
  explicit Slime4Rec(const Slime4RecConfig& config);

  autograd::Variable Loss(const data::Batch& batch) override;
  Tensor ScoreAll(const data::Batch& batch) override;
  std::string name() const override { return "SLIME4Rec"; }
  bool needs_positives() const override {
    return slime_config_.use_contrastive;
  }

  /// Runs the embedding layer (Eqs. 9-10) and the L filter-mixer blocks;
  /// `input_ids` is a flat (batch_size * max_len) id buffer. Returns the
  /// full hidden states H^L of shape (B, N, d).
  autograd::Variable Encode(const std::vector<int64_t>& input_ids,
                            int64_t batch_size);

  /// Last-position user representation h_t^L, shape (B, d).
  autograd::Variable EncodeLast(const std::vector<int64_t>& input_ids,
                                int64_t batch_size);

  /// Recommendation logits over the item vocabulary (Eq. 31, pre-softmax):
  /// (B, num_items + 1) sharing the item embedding matrix.
  autograd::Variable PredictLogits(const autograd::Variable& h) const;

  const Slime4RecConfig& slime_config() const { return slime_config_; }
  const std::vector<std::shared_ptr<FilterMixerBlock>>& blocks() const {
    return blocks_;
  }
  const nn::Embedding& item_embedding() const { return *item_emb_; }

 private:
  Slime4RecConfig slime_config_;
  std::shared_ptr<nn::Embedding> item_emb_;
  autograd::Variable pos_emb_;  // (N, d)
  std::shared_ptr<nn::LayerNorm> emb_norm_;
  std::shared_ptr<nn::Dropout> emb_dropout_;
  std::vector<std::shared_ptr<FilterMixerBlock>> blocks_;
};

}  // namespace core
}  // namespace slime

#endif  // SLIME4REC_CORE_SLIME4REC_H_
