#include "core/frequency_ramp.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace slime {
namespace core {

const char* ToString(SlideDirection d) {
  return d == SlideDirection::kHighToLow ? "<-" : "->";
}

FrequencyRamp::FrequencyRamp(int64_t num_bins, int64_t num_layers,
                             double alpha, SlideDirection dynamic_direction,
                             SlideDirection static_direction)
    : num_bins_(num_bins),
      num_layers_(num_layers),
      alpha_(alpha),
      dynamic_direction_(dynamic_direction),
      static_direction_(static_direction) {
  SLIME_CHECK_GE(num_bins_, 1);
  SLIME_CHECK_GE(num_layers_, 1);
  SLIME_CHECK_MSG(alpha_ > 0.0 && alpha_ <= 1.0,
                  "alpha must be in (0,1], got " << alpha_);
}

double FrequencyRamp::step() const {
  if (num_layers_ <= 1) return 0.0;
  return (1.0 - alpha_) * static_cast<double>(num_bins_) /
         static_cast<double>(num_layers_ - 1);
}

FilterWindow FrequencyRamp::DynamicWindow(int64_t layer) const {
  SLIME_CHECK(layer >= 0 && layer < num_layers_);
  // The "->" ordering is the reversed layer list of "<-" (paper:
  // sigma_->(omega) = inverse(sigma_<-(omega))).
  const int64_t l = dynamic_direction_ == SlideDirection::kHighToLow
                        ? layer
                        : num_layers_ - 1 - layer;
  const double m = static_cast<double>(num_bins_);
  // Eq. 17-18: i = M(1-alpha) - l*step, j = M - l*step.
  const double j = m - static_cast<double>(l) * step();
  const double i = j - alpha_ * m;
  FilterWindow w;
  w.begin = std::clamp<int64_t>(static_cast<int64_t>(std::llround(i)), 0,
                                num_bins_);
  w.end = std::clamp<int64_t>(static_cast<int64_t>(std::llround(j)), 0,
                              num_bins_);
  // A filter always keeps at least one bin.
  if (w.begin >= w.end) {
    if (w.end < num_bins_) {
      w.begin = w.end;
      w.end = w.end + 1;
    } else {
      w.begin = w.end - 1;
    }
  }
  return w;
}

FilterWindow FrequencyRamp::StaticWindow(int64_t layer) const {
  SLIME_CHECK(layer >= 0 && layer < num_layers_);
  const int64_t l = static_direction_ == SlideDirection::kHighToLow
                        ? layer
                        : num_layers_ - 1 - layer;
  // Eq. 23-24 with S_S = M/L: layer l ("<-") covers
  // [M - (l+1)M/L, M - l*M/L). Rounding both endpoints with the same rule
  // yields an exact disjoint partition of [0, M).
  const double m = static_cast<double>(num_bins_);
  const double share = m / static_cast<double>(num_layers_);
  FilterWindow w;
  w.end = static_cast<int64_t>(
      std::llround(m - static_cast<double>(l) * share));
  w.begin = static_cast<int64_t>(
      std::llround(m - static_cast<double>(l + 1) * share));
  w.begin = std::clamp<int64_t>(w.begin, 0, num_bins_);
  w.end = std::clamp<int64_t>(w.end, 0, num_bins_);
  // A filter always keeps at least one bin (the DynamicWindow guarantee).
  // Without this, L > M (more layers than bins) collapsed some shares to
  // begin == end and those layers' spectra were masked to all-zero. For
  // L <= M the llround boundaries already advance by >= 1 per layer, so
  // the clamp never fires and the exact disjoint partition is preserved;
  // for L > M disjoint nonempty windows are impossible and layers overlap
  // on 1-bin windows instead of going silent.
  if (w.begin >= w.end) {
    if (w.end < num_bins_) {
      w.begin = w.end;
      w.end = w.end + 1;
    } else {
      w.begin = w.end - 1;
    }
  }
  return w;
}

Tensor FrequencyRamp::WindowMask(const FilterWindow& window) const {
  Tensor mask({num_bins_, 1});
  float* p = mask.data();
  for (int64_t w = 0; w < num_bins_; ++w) {
    p[w] = window.Contains(w) ? 1.0f : 0.0f;
  }
  return mask;
}

}  // namespace core
}  // namespace slime
