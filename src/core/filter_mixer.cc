#include "core/filter_mixer.h"

#include "autograd/ops.h"
#include "fft/fft.h"
#include "tensor/tensor_ops.h"

namespace slime {
namespace core {

FilterMixerLayer::FilterMixerLayer(int64_t seq_len, int64_t dim,
                                   int64_t num_layers, int64_t layer_index,
                                   const FilterMixerOptions& options,
                                   float dropout, Rng* rng)
    : seq_len_(seq_len), options_(options) {
  SLIME_CHECK_MSG(options.use_dynamic || options.use_static,
                  "filter mixer needs at least one of DFS/SFS");
  const int64_t m = fft::RfftBins(seq_len);
  const FrequencyRamp ramp(m, num_layers, options.alpha,
                           options.dynamic_direction,
                           options.static_direction);
  dynamic_window_ = options.full_spectrum ? FilterWindow{0, m}
                                          : ramp.DynamicWindow(layer_index);
  static_window_ = options.full_spectrum ? FilterWindow{0, m}
                                         : ramp.StaticWindow(layer_index);
  if (!options.full_spectrum) {
    dynamic_mask_ = ramp.WindowMask(dynamic_window_);
    static_mask_ = ramp.WindowMask(static_window_);
  }
  if (options.use_dynamic) {
    dynamic_filter_ = RegisterModule(
        "dynamic_filter", std::make_shared<LearnableFilter>(m, dim, rng));
  }
  if (options.use_static) {
    static_filter_ = RegisterModule(
        "static_filter", std::make_shared<LearnableFilter>(m, dim, rng));
  }
  dropout_ = RegisterModule("dropout", std::make_shared<nn::Dropout>(dropout));
  layer_norm_ =
      RegisterModule("layer_norm", std::make_shared<nn::LayerNorm>(dim));
}

autograd::Variable FilterMixerLayer::Forward(const autograd::Variable& x,
                                             Rng* rng) const {
  using autograd::Variable;
  const int64_t n = x.size(1);
  SLIME_CHECK_EQ(n, seq_len_);
  // Eq. 12: transform to the frequency domain.
  const fft::SpectralPair spectrum = fft::Rfft(x);
  fft::SpectralPair mixed;
  if (options_.use_dynamic && options_.use_static) {
    // Eqs. 21, 25, 26.
    const fft::SpectralPair xd =
        dynamic_filter_->Apply(spectrum, dynamic_mask_);
    const fft::SpectralPair xs = static_filter_->Apply(spectrum, static_mask_);
    mixed = fft::MixSpectra(xd, xs, static_cast<float>(options_.gamma));
  } else if (options_.use_dynamic) {
    mixed = dynamic_filter_->Apply(spectrum, dynamic_mask_);
  } else {
    mixed = static_filter_->Apply(spectrum, static_mask_);
  }
  // Eq. 27: back to the time domain; Eq. 28: dropout + residual + LN.
  Variable h = fft::Irfft(mixed, n);
  h = dropout_->Forward(h, rng);
  return layer_norm_->Forward(autograd::Add(x, h));
}

namespace {

Tensor MaskedAmplitude(const LearnableFilter& filter, const Tensor& mask) {
  Tensor amp = filter.Amplitude();
  if (!mask.defined()) return amp;
  return ops::Mul(amp, mask);  // mask (M,1) broadcasts over (M,d)
}

}  // namespace

Tensor FilterMixerLayer::MaskedDynamicAmplitude() const {
  SLIME_CHECK(options_.use_dynamic);
  return MaskedAmplitude(*dynamic_filter_, dynamic_mask_);
}

Tensor FilterMixerLayer::MaskedStaticAmplitude() const {
  SLIME_CHECK(options_.use_static);
  return MaskedAmplitude(*static_filter_, static_mask_);
}

FilterMixerBlock::FilterMixerBlock(int64_t seq_len, int64_t dim,
                                   int64_t num_layers, int64_t layer_index,
                                   const FilterMixerOptions& options,
                                   float dropout, Rng* rng) {
  mixer_ = RegisterModule(
      "mixer", std::make_shared<FilterMixerLayer>(
                   seq_len, dim, num_layers, layer_index, options, dropout,
                   rng));
  ffn_ = RegisterModule("ffn",
                        std::make_shared<nn::FeedForward>(dim, dropout, rng));
  layer_norm_ =
      RegisterModule("layer_norm", std::make_shared<nn::LayerNorm>(dim));
}

autograd::Variable FilterMixerBlock::Forward(const autograd::Variable& x,
                                             Rng* rng) const {
  using autograd::Add;
  using autograd::Variable;
  const Variable h_hat = mixer_->Forward(x, rng);
  // Eq. 30: densely residual combination of block input, mixer output and
  // FFN output; FeedForward's trailing dropout realises the Dropout(...)
  // term.
  const Variable f = ffn_->Forward(h_hat, rng);
  return layer_norm_->Forward(Add(Add(x, h_hat), f));
}

}  // namespace core
}  // namespace slime
