#include "core/slime4rec.h"

#include "autograd/ops.h"
#include "core/contrastive.h"
#include "nn/init.h"

namespace slime {
namespace core {

Slime4Rec::Slime4Rec(const Slime4RecConfig& config)
    : models::SequentialRecommender(config), slime_config_(config) {
  SLIME_CHECK_MSG(!config.per_position_loss,
                  "the filter mixer is non-causal: a per-position loss "
                  "would leak each label into its own input (see "
                  "ModelConfig::per_position_loss)");
  const int64_t d = config.hidden_dim;
  const int64_t n = config.max_len;
  item_emb_ = RegisterModule(
      "item_emb",
      std::make_shared<nn::Embedding>(config.num_items + 1, d, &rng_));
  pos_emb_ = RegisterParameter(
      "pos_emb", autograd::Param(nn::NormalInit({n, d}, &rng_, 0.02f)));
  emb_norm_ = RegisterModule("emb_norm", std::make_shared<nn::LayerNorm>(d));
  emb_dropout_ = RegisterModule("emb_dropout",
                                std::make_shared<nn::Dropout>(
                                    config.emb_dropout));
  for (int64_t l = 0; l < config.num_layers; ++l) {
    blocks_.push_back(RegisterModule(
        "block" + std::to_string(l),
        std::make_shared<FilterMixerBlock>(n, d, config.num_layers, l,
                                           config.mixer, config.dropout,
                                           &rng_)));
  }
}

autograd::Variable Slime4Rec::Encode(const std::vector<int64_t>& input_ids,
                                     int64_t batch_size) {
  using autograd::Add;
  using autograd::AddConst;
  using autograd::Variable;
  const int64_t n = config_.max_len;
  SLIME_CHECK_EQ(static_cast<int64_t>(input_ids.size()), batch_size * n);
  // Eq. 9 + Eq. 10: item embedding + positional embedding, LN, dropout.
  Variable e = item_emb_->Forward(input_ids, {batch_size, n});
  e = Add(e, pos_emb_);  // (B,N,d) + (N,d) broadcasts
  e = emb_norm_->Forward(e);
  e = emb_dropout_->Forward(e, &rng_);
  Variable h = e;
  for (const auto& block : blocks_) {
    h = block->Forward(h, &rng_);
  }
  return h;
}

autograd::Variable Slime4Rec::EncodeLast(
    const std::vector<int64_t>& input_ids, int64_t batch_size) {
  using autograd::Reshape;
  using autograd::Slice;
  const int64_t n = config_.max_len;
  autograd::Variable h = Encode(input_ids, batch_size);
  // Left padding places the most recent item at position N-1.
  return Reshape(Slice(h, 1, n - 1, n), {batch_size, config_.hidden_dim});
}

autograd::Variable Slime4Rec::PredictLogits(
    const autograd::Variable& h) const {
  return autograd::MatMulTransB(h, item_emb_->weight());
}

autograd::Variable Slime4Rec::Loss(const data::Batch& batch) {
  using autograd::Add;
  using autograd::CrossEntropy;
  using autograd::MulScalar;
  using autograd::Variable;
  // Main recommendation objective (Eqs. 31-32, softmax cross-entropy over
  // the full item set at the last position).
  Variable h = EncodeLast(batch.input_ids, batch.size);
  Variable loss = CrossEntropy(PredictLogits(h), batch.targets);
  if (!slime_config_.use_contrastive) return loss;

  // Unsupervised view h': the same sequences through the network again
  // (different dropout masks); supervised view h'_s: the same-target
  // positives (Eq. 35).
  SLIME_CHECK_MSG(!batch.positive_input_ids.empty(),
                  "contrastive training needs batch positives");
  Variable h_unsup = EncodeLast(batch.input_ids, batch.size);
  Variable h_sup = EncodeLast(batch.positive_input_ids, batch.size);
  Variable cl =
      InfoNceLoss(h_unsup, h_sup, config_.cl_temperature);  // Eqs. 33-34
  // Eq. 36: total objective.
  return Add(loss, MulScalar(cl, config_.cl_weight));
}

Tensor Slime4Rec::ScoreAll(const data::Batch& batch) {
  autograd::Variable h = EncodeLast(batch.input_ids, batch.size);
  return PredictLogits(h).value();
}

}  // namespace core
}  // namespace slime
