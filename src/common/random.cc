#include "common/random.h"

#include <cmath>

#include "common/macros.h"

namespace slime {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

/// SplitMix64 step, used only for seeding the main generator.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

RngState Rng::state() const {
  RngState st;
  for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
  st.have_cached_gaussian = have_cached_gaussian_;
  st.cached_gaussian = cached_gaussian_;
  return st;
}

void Rng::set_state(const RngState& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  have_cached_gaussian_ = state.have_cached_gaussian;
  cached_gaussian_ = state.cached_gaussian;
}

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  have_cached_gaussian_ = false;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  SLIME_CHECK_GT(n, 0u);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  SLIME_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

float Rng::UniformFloat() {
  return static_cast<float>(NextUint64() >> 40) * 0x1.0p-24f;
}

double Rng::UniformDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

float Rng::Gaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; guard against log(0).
  double u1 = UniformDouble();
  while (u1 <= 1e-12) u1 = UniformDouble();
  const double u2 = UniformDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = static_cast<float>(r * std::sin(theta));
  have_cached_gaussian_ = true;
  return static_cast<float>(r * std::cos(theta));
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  SLIME_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    SLIME_CHECK_GE(w, 0.0);
    total += w;
  }
  SLIME_CHECK_GT(total, 0.0);
  double r = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace slime
