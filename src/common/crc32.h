#ifndef SLIME4REC_COMMON_CRC32_H_
#define SLIME4REC_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace slime {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the checksum used by zip and
/// PNG. Table-driven, byte-at-a-time; plenty fast for checkpoint-sized
/// payloads and requires no hardware support.
///
/// `Crc32(data, n)` is equivalent to `ExtendCrc32(0, data, n)`; the extend
/// form lets callers checksum a file incrementally.
uint32_t Crc32(const void* data, size_t n);
uint32_t ExtendCrc32(uint32_t crc, const void* data, size_t n);

inline uint32_t Crc32(std::string_view s) { return Crc32(s.data(), s.size()); }

}  // namespace slime

#endif  // SLIME4REC_COMMON_CRC32_H_
