#ifndef SLIME4REC_COMMON_STATUS_H_
#define SLIME4REC_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>

#include "common/macros.h"

namespace slime {

/// Lightweight error-reporting type for fallible boundaries (file I/O,
/// dataset parsing, user-supplied configuration). Internal invariants use
/// SLIME_CHECK instead; Status is reserved for conditions a caller can
/// meaningfully handle, following the RocksDB convention.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kIOError,
    kCorruption,
    kAborted,
    kDeadlineExceeded,
    kResourceExhausted,
    kUnavailable,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  /// An operation that started but was deliberately given up on (e.g.
  /// training abandoned after repeated divergence rollbacks, or a model
  /// reload rolled back after failing canary validation).
  static Status Aborted(std::string msg) {
    return Status(Code::kAborted, std::move(msg));
  }
  /// A request ran out of its time budget before completing. The serving
  /// layer may still have produced partial or degraded results; see
  /// serving::ModelServer.
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  /// Load shedding: the server refused the request to protect itself
  /// (in-flight budget or rate limit). Retry later; the message carries a
  /// retry-after hint when one is known.
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  /// The service cannot take requests right now (still starting, or
  /// draining for shutdown). Unlike ResourceExhausted this is a state, not
  /// a momentary overload.
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Typed back-off hint attached to ResourceExhausted/Unavailable
  /// statuses (0 = no hint). The machine-readable twin of the "retry
  /// after" text some messages carry, so a retrying client (see
  /// cluster::RetryPolicy) can honour the server's hint without parsing
  /// prose. Analogue of gRPC's RetryInfo error detail.
  int64_t retry_after_nanos() const { return retry_after_nanos_; }
  Status&& WithRetryAfter(int64_t nanos) && {
    retry_after_nanos_ = nanos;
    return std::move(*this);
  }

  /// Human-readable rendering, e.g. "IOError: no such file".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
  int64_t retry_after_nanos_ = 0;
};

/// Propagates a non-OK Status to the caller.
#define SLIME_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::slime::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (0)

/// A value-or-Status pair for fallible factory functions.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    SLIME_CHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    SLIME_CHECK_MSG(ok(), status_.ToString());
    return value_;
  }
  T& value() & {
    SLIME_CHECK_MSG(ok(), status_.ToString());
    return value_;
  }
  T&& value() && {
    SLIME_CHECK_MSG(ok(), status_.ToString());
    return std::move(value_);
  }

 private:
  T value_{};
  Status status_;
};

}  // namespace slime

#endif  // SLIME4REC_COMMON_STATUS_H_
