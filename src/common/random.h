#ifndef SLIME4REC_COMMON_RANDOM_H_
#define SLIME4REC_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace slime {

/// The full serialisable state of an Rng: the xoshiro256++ words plus the
/// Box-Muller spare. Capturing and restoring this makes a generator resume
/// its stream bit-for-bit (train-state snapshots rely on it).
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
  bool have_cached_gaussian = false;
  float cached_gaussian = 0.0f;
};

/// Deterministic, seedable PRNG used everywhere in the library so that every
/// experiment in the paper reproduction is bit-reproducible for a given
/// seed. Xoshiro256++ (Blackman & Vigna) seeded through SplitMix64; fast,
/// tiny state, and far better statistical quality than rand().
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed4ull) { Seed(seed); }

  /// Re-seeds the generator; identical seeds yield identical streams.
  void Seed(uint64_t seed);

  /// Captures / restores the complete generator state.
  RngState state() const;
  void set_state(const RngState& state);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform float in [0, 1).
  float UniformFloat();

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Standard normal via Box-Muller.
  float Gaussian();

  /// Returns true with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Requires a positive total weight.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = Uniform(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
  bool have_cached_gaussian_ = false;
  float cached_gaussian_ = 0.0f;
};

}  // namespace slime

#endif  // SLIME4REC_COMMON_RANDOM_H_
