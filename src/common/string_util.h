#ifndef SLIME4REC_COMMON_STRING_UTIL_H_
#define SLIME4REC_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace slime {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(const std::string& s, char delim);

/// Trims ASCII whitespace from both ends.
std::string Trim(const std::string& s);

/// Formats a float with fixed decimals, e.g. FormatFloat(0.12345, 4) ->
/// "0.1234". Used by the bench table printers so output matches the paper's
/// 4-decimal convention.
std::string FormatFloat(double v, int decimals);

/// Joins strings with a separator.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

}  // namespace slime

#endif  // SLIME4REC_COMMON_STRING_UTIL_H_
