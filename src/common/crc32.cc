#include "common/crc32.h"

#include <array>

namespace slime {
namespace {

constexpr uint32_t kPolynomial = 0xEDB88320u;

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (kPolynomial ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t ExtendCrc32(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32(const void* data, size_t n) { return ExtendCrc32(0, data, n); }

}  // namespace slime
