#include "common/status.h"

namespace slime {

std::string Status::ToString() const {
  const char* name = "Unknown";
  switch (code_) {
    case Code::kOk:
      return "OK";
    case Code::kInvalidArgument:
      name = "InvalidArgument";
      break;
    case Code::kNotFound:
      name = "NotFound";
      break;
    case Code::kIOError:
      name = "IOError";
      break;
    case Code::kCorruption:
      name = "Corruption";
      break;
    case Code::kAborted:
      name = "Aborted";
      break;
    case Code::kDeadlineExceeded:
      name = "DeadlineExceeded";
      break;
    case Code::kResourceExhausted:
      name = "ResourceExhausted";
      break;
    case Code::kUnavailable:
      name = "Unavailable";
      break;
  }
  return std::string(name) + ": " + message_;
}

}  // namespace slime
