#ifndef SLIME4REC_COMMON_MACROS_H_
#define SLIME4REC_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace slime {
namespace internal {

/// Aborts the process with a formatted message. Used by SLIME_CHECK when an
/// internal invariant is violated; invariant violations are programming
/// errors, not recoverable conditions, so we fail fast (RocksDB style
/// assertions for debug invariants, kept on in release for a numerics
/// library where silent corruption is worse than a crash).
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& message) {
  std::fprintf(stderr, "SLIME_CHECK failed at %s:%d: %s %s\n", file, line,
               expr, message.c_str());
  std::abort();
}

/// Stream-capture helper so SLIME_CHECK can accept `<<`-style messages.
class CheckMessageBuilder {
 public:
  template <typename T>
  CheckMessageBuilder& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }
  std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace slime

/// Checks an invariant; aborts with file/line and an optional streamed
/// message on failure. Enabled in all build types.
/// No-alias pointer qualifier for hot loops where the compiler cannot
/// otherwise prove distinct buffers (e.g. the FFT recombination passes,
/// whose scratch and output planes come from different allocations but
/// reach the loop as plain float*).
#if defined(_MSC_VER)
#define SLIME_RESTRICT __restrict
#else
#define SLIME_RESTRICT __restrict__
#endif

#define SLIME_CHECK(expr)                                                  \
  if (!(expr))                                                             \
  ::slime::internal::CheckFailed(__FILE__, __LINE__, #expr,                \
                                 ::slime::internal::CheckMessageBuilder() \
                                     .str())

#define SLIME_CHECK_MSG(expr, msg)                          \
  if (!(expr))                                              \
  ::slime::internal::CheckFailed(                           \
      __FILE__, __LINE__, #expr,                            \
      (::slime::internal::CheckMessageBuilder() << msg).str())

#define SLIME_CHECK_EQ(a, b) \
  SLIME_CHECK_MSG((a) == (b), "(" << (a) << " vs " << (b) << ")")
#define SLIME_CHECK_NE(a, b) \
  SLIME_CHECK_MSG((a) != (b), "(" << (a) << " vs " << (b) << ")")
#define SLIME_CHECK_LT(a, b) \
  SLIME_CHECK_MSG((a) < (b), "(" << (a) << " vs " << (b) << ")")
#define SLIME_CHECK_LE(a, b) \
  SLIME_CHECK_MSG((a) <= (b), "(" << (a) << " vs " << (b) << ")")
#define SLIME_CHECK_GT(a, b) \
  SLIME_CHECK_MSG((a) > (b), "(" << (a) << " vs " << (b) << ")")
#define SLIME_CHECK_GE(a, b) \
  SLIME_CHECK_MSG((a) >= (b), "(" << (a) << " vs " << (b) << ")")

#endif  // SLIME4REC_COMMON_MACROS_H_
