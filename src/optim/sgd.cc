#include "optim/sgd.h"

#include "compute/kernels.h"

namespace slime {
namespace optim {

Sgd::Sgd(std::vector<autograd::Variable> params)
    : Sgd(std::move(params), Options()) {}

Sgd::Sgd(std::vector<autograd::Variable> params, Options options)
    : Optimizer(std::move(params)), options_(options) {
  if (options_.momentum > 0.0f) {
    velocity_.reserve(params_.size());
    for (const auto& p : params_) {
      velocity_.emplace_back(Tensor::Zeros(p.value().shape()));
    }
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.has_grad()) continue;
    const Tensor& g = p.grad();
    Tensor& value = p.mutable_value();
    float* pw = value.data();
    const float* pg = g.data();
    const int64_t n = value.numel();
    if (options_.momentum <= 0.0f && options_.weight_decay <= 0.0f) {
      // Plain SGD is exactly w += g * (-lr); route it through the kernel
      // seam (same multiply-add per element, so identical rounding).
      compute::Dispatch().axpy(pw, pg, -options_.lr, n);
      continue;
    }
    for (int64_t j = 0; j < n; ++j) {
      float upd = pg[j];
      if (options_.weight_decay > 0.0f) upd += options_.weight_decay * pw[j];
      if (options_.momentum > 0.0f) {
        float* pvel = velocity_[i].data();
        pvel[j] = options_.momentum * pvel[j] + upd;
        upd = pvel[j];
      }
      pw[j] -= options_.lr * upd;
    }
  }
  ZeroGrad();
}

}  // namespace optim
}  // namespace slime
