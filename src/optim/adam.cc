#include "optim/adam.h"

#include <cmath>

#include "compute/kernels.h"
#include "tensor/tensor_ops.h"

namespace slime {
namespace optim {

double Optimizer::GradNorm() const {
  double total = 0.0;
  for (const auto& p : params_) {
    if (!p.has_grad()) continue;
    const double n = ops::Norm(p.grad());
    total += n * n;
  }
  return std::sqrt(total);
}

void Optimizer::ClipGradNorm(double max_norm, double total) {
  if (total <= max_norm || total == 0.0) return;
  const float scale = static_cast<float>(max_norm / total);
  for (auto& p : params_) {
    if (!p.has_grad()) continue;
    Tensor g = p.grad();  // shares the node's grad storage
    ops::ScaleInPlace(&g, scale);
  }
}

Adam::Adam(std::vector<autograd::Variable> params)
    : Adam(std::move(params), Options()) {}

Adam::Adam(std::vector<autograd::Variable> params, Options options)
    : Optimizer(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(Tensor::Zeros(p.value().shape()));
    v_.emplace_back(Tensor::Zeros(p.value().shape()));
  }
}

Status Adam::RestoreState(int64_t step_count, std::vector<Tensor> m,
                          std::vector<Tensor> v) {
  if (step_count < 0) {
    return Status::InvalidArgument("negative Adam step count " +
                                   std::to_string(step_count));
  }
  if (m.size() != params_.size() || v.size() != params_.size()) {
    return Status::InvalidArgument(
        "Adam state has " + std::to_string(m.size()) + "/" +
        std::to_string(v.size()) + " moment tensors, optimizer has " +
        std::to_string(params_.size()) + " parameters");
  }
  for (size_t i = 0; i < params_.size(); ++i) {
    if (m[i].shape() != params_[i].value().shape() ||
        v[i].shape() != params_[i].value().shape()) {
      return Status::InvalidArgument(
          "Adam moment shape mismatch at parameter " + std::to_string(i) +
          ": " + m[i].ShapeString() + " vs " +
          params_[i].value().ShapeString());
    }
  }
  t_ = step_count;
  m_ = std::move(m);
  v_ = std::move(v);
  return Status::OK();
}

void Adam::Step() {
  ++t_;
  compute::AdamStepParams step;
  step.beta1 = options_.beta1;
  step.beta2 = options_.beta2;
  step.bias_corr1 =
      1.0f - std::pow(options_.beta1, static_cast<float>(t_));
  step.bias_corr2 =
      1.0f - std::pow(options_.beta2, static_cast<float>(t_));
  step.lr = options_.lr;
  step.eps = options_.eps;
  step.weight_decay = options_.weight_decay;
  const auto& kt = compute::Dispatch();
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.has_grad()) continue;
    Tensor& value = p.mutable_value();
    kt.adam_step(value.data(), m_[i].data(), v_[i].data(), p.grad().data(),
                 value.numel(), step);
  }
  ZeroGrad();
}

}  // namespace optim
}  // namespace slime
