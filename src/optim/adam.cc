#include "optim/adam.h"

#include <cmath>

#include "compute/thread_pool.h"
#include "tensor/tensor_ops.h"

namespace slime {
namespace optim {

double Optimizer::GradNorm() const {
  double total = 0.0;
  for (const auto& p : params_) {
    if (!p.has_grad()) continue;
    const double n = ops::Norm(p.grad());
    total += n * n;
  }
  return std::sqrt(total);
}

void Optimizer::ClipGradNorm(double max_norm, double total) {
  if (total <= max_norm || total == 0.0) return;
  const float scale = static_cast<float>(max_norm / total);
  for (auto& p : params_) {
    if (!p.has_grad()) continue;
    Tensor g = p.grad();  // shares the node's grad storage
    ops::ScaleInPlace(&g, scale);
  }
}

Adam::Adam(std::vector<autograd::Variable> params)
    : Adam(std::move(params), Options()) {}

Adam::Adam(std::vector<autograd::Variable> params, Options options)
    : Optimizer(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(Tensor::Zeros(p.value().shape()));
    v_.emplace_back(Tensor::Zeros(p.value().shape()));
  }
}

Status Adam::RestoreState(int64_t step_count, std::vector<Tensor> m,
                          std::vector<Tensor> v) {
  if (step_count < 0) {
    return Status::InvalidArgument("negative Adam step count " +
                                   std::to_string(step_count));
  }
  if (m.size() != params_.size() || v.size() != params_.size()) {
    return Status::InvalidArgument(
        "Adam state has " + std::to_string(m.size()) + "/" +
        std::to_string(v.size()) + " moment tensors, optimizer has " +
        std::to_string(params_.size()) + " parameters");
  }
  for (size_t i = 0; i < params_.size(); ++i) {
    if (m[i].shape() != params_[i].value().shape() ||
        v[i].shape() != params_[i].value().shape()) {
      return Status::InvalidArgument(
          "Adam moment shape mismatch at parameter " + std::to_string(i) +
          ": " + m[i].ShapeString() + " vs " +
          params_[i].value().ShapeString());
    }
  }
  t_ = step_count;
  m_ = std::move(m);
  v_ = std::move(v);
  return Status::OK();
}

void Adam::Step() {
  ++t_;
  const float b1 = options_.beta1;
  const float b2 = options_.beta2;
  const float bc1 =
      1.0f - std::pow(b1, static_cast<float>(t_));
  const float bc2 =
      1.0f - std::pow(b2, static_cast<float>(t_));
  const float lr = options_.lr;
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.has_grad()) continue;
    const Tensor& g = p.grad();
    Tensor& value = p.mutable_value();
    float* pm = m_[i].data();
    float* pv = v_[i].data();
    float* pw = value.data();
    const float* pg = g.data();
    // Fully elementwise, so the fixed split is trivially bit-identical at
    // any thread count.
    compute::ParallelFor(
        0, value.numel(), compute::kElementwiseGrain,
        [&](int64_t lo, int64_t hi) {
          for (int64_t j = lo; j < hi; ++j) {
            pm[j] = b1 * pm[j] + (1.0f - b1) * pg[j];
            pv[j] = b2 * pv[j] + (1.0f - b2) * pg[j] * pg[j];
            const float mhat = pm[j] / bc1;
            const float vhat = pv[j] / bc2;
            float update = mhat / (std::sqrt(vhat) + options_.eps);
            if (options_.weight_decay > 0.0f)
              update += options_.weight_decay * pw[j];
            pw[j] -= lr * update;
          }
        });
  }
  ZeroGrad();
}

}  // namespace optim
}  // namespace slime
