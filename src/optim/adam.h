#ifndef SLIME4REC_OPTIM_ADAM_H_
#define SLIME4REC_OPTIM_ADAM_H_

#include <vector>

#include "common/status.h"
#include "optim/optimizer.h"
#include "tensor/tensor.h"

namespace slime {
namespace optim {

/// Adam (Kingma & Ba) with bias correction and optional decoupled weight
/// decay. Defaults mirror the paper's training setup (lr 1e-3).
class Adam : public Optimizer {
 public:
  struct Options {
    float lr = 1e-3f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    /// Decoupled (AdamW-style) weight decay; 0 disables.
    float weight_decay = 0.0f;
  };

  Adam(std::vector<autograd::Variable> params, Options options);
  explicit Adam(std::vector<autograd::Variable> params);

  void Step() override;

  const Options& options() const { return options_; }
  void set_lr(float lr) { options_.lr = lr; }

  /// Serialisable optimizer state, exposed so train-state snapshots can
  /// persist the moments and bias-correction step across a crash/resume.
  int64_t step_count() const { return t_; }
  const std::vector<Tensor>& first_moments() const { return m_; }
  const std::vector<Tensor>& second_moments() const { return v_; }

  /// Restores state captured from an identically-parameterised Adam. The
  /// moment lists must match the parameter list element-for-element in
  /// count and shape; mismatches are rejected with InvalidArgument and
  /// leave the optimizer unchanged.
  Status RestoreState(int64_t step_count, std::vector<Tensor> m,
                      std::vector<Tensor> v);

 private:
  Options options_;
  int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace optim
}  // namespace slime

#endif  // SLIME4REC_OPTIM_ADAM_H_
