#ifndef SLIME4REC_OPTIM_OPTIMIZER_H_
#define SLIME4REC_OPTIM_OPTIMIZER_H_

#include <vector>

#include "autograd/variable.h"

namespace slime {
namespace optim {

/// Base interface for first-order optimizers over a fixed parameter list.
/// Parameters are shared Variable handles; Step() reads their accumulated
/// gradients and updates values in place, then the caller ZeroGrad()s (or
/// uses Step()'s implicit zeroing, see below) before the next batch.
class Optimizer {
 public:
  explicit Optimizer(std::vector<autograd::Variable> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update from the current gradients and clears them.
  virtual void Step() = 0;

  /// Clears all parameter gradients.
  void ZeroGrad() {
    for (auto& p : params_) p.ZeroGrad();
  }

  /// The global L2 norm over all parameter gradients (sqrt of the sum of
  /// squared per-parameter norms). Telemetry reads this pre-clip.
  double GradNorm() const;

  /// Global-norm gradient clipping; a no-op if the norm is under
  /// `max_norm`. Call before Step().
  void ClipGradNorm(double max_norm) { ClipGradNorm(max_norm, GradNorm()); }

  /// Same, with the norm precomputed by GradNorm() — callers that already
  /// read the norm (the trainer, for telemetry) avoid a second pass.
  void ClipGradNorm(double max_norm, double total_norm);

  const std::vector<autograd::Variable>& params() const { return params_; }

 protected:
  std::vector<autograd::Variable> params_;
};

}  // namespace optim
}  // namespace slime

#endif  // SLIME4REC_OPTIM_OPTIMIZER_H_
