#ifndef SLIME4REC_OPTIM_SGD_H_
#define SLIME4REC_OPTIM_SGD_H_

#include <vector>

#include "optim/optimizer.h"
#include "tensor/tensor.h"

namespace slime {
namespace optim {

/// Stochastic gradient descent with optional classical momentum; used in
/// tests and for the BPR-MF baseline's simpler training dynamics.
class Sgd : public Optimizer {
 public:
  struct Options {
    float lr = 1e-2f;
    float momentum = 0.0f;
    float weight_decay = 0.0f;
  };

  Sgd(std::vector<autograd::Variable> params, Options options);
  explicit Sgd(std::vector<autograd::Variable> params);

  void Step() override;

  void set_lr(float lr) { options_.lr = lr; }

 private:
  Options options_;
  std::vector<Tensor> velocity_;
};

}  // namespace optim
}  // namespace slime

#endif  // SLIME4REC_OPTIM_SGD_H_
