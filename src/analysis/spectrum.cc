#include "analysis/spectrum.h"

#include <cmath>

#include "common/macros.h"
#include "fft/fft.h"

#include <algorithm>
#include <unordered_map>

namespace slime {
namespace analysis {

namespace {

/// One smoothing pass: each item's code becomes the mean of its own code
/// and the codes of its top-k co-occurrence neighbours (window +/-2 in the
/// interaction sequences). Related items end up with correlated codes, so
/// periodic behaviour becomes a periodic signal.
void SmoothCodesByCooccurrence(const data::InteractionDataset& data,
                               int64_t embedding_dim,
                               std::vector<float>* code) {
  const int64_t vocab = data.num_items() + 1;
  std::vector<std::unordered_map<int64_t, int64_t>> counts(vocab);
  constexpr int64_t kWindow = 2;
  for (const auto& seq : data.sequences()) {
    const int64_t n = static_cast<int64_t>(seq.size());
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = i + 1; j <= std::min(n - 1, i + kWindow); ++j) {
        if (seq[i] == seq[j]) continue;
        ++counts[seq[i]][seq[j]];
        ++counts[seq[j]][seq[i]];
      }
    }
  }
  constexpr size_t kTopK = 8;
  std::vector<float> smoothed(*code);
  for (int64_t v = 1; v < vocab; ++v) {
    std::vector<std::pair<int64_t, int64_t>> neighbours(counts[v].begin(),
                                                        counts[v].end());
    std::partial_sort(
        neighbours.begin(),
        neighbours.begin() +
            std::min(kTopK, neighbours.size()),
        neighbours.end(), [](const auto& a, const auto& b) {
          return a.second > b.second ||
                 (a.second == b.second && a.first < b.first);
        });
    const size_t take = std::min(kTopK, neighbours.size());
    if (take == 0) continue;
    for (int64_t j = 0; j < embedding_dim; ++j) {
      double acc = (*code)[v * embedding_dim + j];
      for (size_t t = 0; t < take; ++t) {
        acc += (*code)[neighbours[t].first * embedding_dim + j];
      }
      smoothed[v * embedding_dim + j] =
          static_cast<float>(acc / static_cast<double>(take + 1));
    }
  }
  *code = std::move(smoothed);
}

}  // namespace

SpectrumProfile ComputeSpectrumProfile(const data::InteractionDataset& data,
                                       int64_t max_len,
                                       int64_t embedding_dim,
                                       uint64_t seed, bool smooth_codes) {
  SLIME_CHECK_GT(max_len, 1);
  SLIME_CHECK_GT(embedding_dim, 0);
  const int64_t bins = fft::RfftBins(max_len);
  Rng rng(seed);
  // Fixed random item code: (num_items + 1) x d, pad row zero.
  const int64_t vocab = data.num_items() + 1;
  std::vector<float> code(vocab * embedding_dim, 0.0f);
  for (int64_t v = 1; v < vocab; ++v) {
    for (int64_t j = 0; j < embedding_dim; ++j) {
      code[v * embedding_dim + j] = rng.Gaussian();
    }
  }
  if (smooth_codes) {
    SmoothCodesByCooccurrence(data, embedding_dim, &code);
  }
  SpectrumProfile profile;
  profile.amplitude.assign(bins, 0.0);
  std::vector<float> series(max_len);
  std::vector<float> re(bins);
  std::vector<float> im(bins);
  int64_t count = 0;
  for (const auto& seq : data.sequences()) {
    const std::vector<int64_t> padded = data::PadTruncate(seq, max_len);
    for (int64_t j = 0; j < embedding_dim; ++j) {
      for (int64_t t = 0; t < max_len; ++t) {
        series[t] = code[padded[t] * embedding_dim + j];
      }
      fft::RfftForward(series.data(), max_len, re.data(), im.data());
      for (int64_t k = 0; k < bins; ++k) {
        profile.amplitude[k] +=
            std::sqrt(double(re[k]) * re[k] + double(im[k]) * im[k]);
      }
      ++count;
    }
  }
  SLIME_CHECK_GT(count, 0);
  double total = 0.0;
  for (auto& a : profile.amplitude) {
    a /= static_cast<double>(count);
    total += a;
  }
  profile.normalized.resize(bins);
  for (int64_t k = 0; k < bins; ++k) {
    profile.normalized[k] = total > 0 ? profile.amplitude[k] / total : 0.0;
  }
  // Band energies and entropy over the non-DC bins.
  const int64_t non_dc = bins - 1;
  if (non_dc > 0) {
    double band_total = 0.0;
    for (int64_t k = 1; k < bins; ++k) band_total += profile.amplitude[k];
    const int64_t third = std::max<int64_t>(1, non_dc / 3);
    for (int64_t k = 1; k < bins; ++k) {
      const double share =
          band_total > 0 ? profile.amplitude[k] / band_total : 0.0;
      if (k <= third) {
        profile.low_band += share;
      } else if (k <= 2 * third) {
        profile.mid_band += share;
      } else {
        profile.high_band += share;
      }
      if (share > 0) profile.entropy -= share * std::log(share);
    }
  }
  return profile;
}

}  // namespace analysis
}  // namespace slime
