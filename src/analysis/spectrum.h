#ifndef SLIME4REC_ANALYSIS_SPECTRUM_H_
#define SLIME4REC_ANALYSIS_SPECTRUM_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "data/dataset.h"

namespace slime {
namespace analysis {

/// Dataset-level frequency profile: the mean rFFT amplitude per frequency
/// bin over all users' padded interaction sequences.
///
/// This backs the paper's Sec. IV-G1 discussion: "in the Amazon dataset,
/// the important frequency components of users are concentrated and mainly
/// distributed in the low-frequency region, while on dense datasets like
/// ML-1M the spectrum is more complex and the important components are
/// scattered in various frequency bands". Sequences are embedded with a
/// fixed random item code (so the profile reflects interaction structure,
/// not trained weights), padded/truncated to `max_len`, transformed along
/// the position axis, and the per-bin amplitudes are averaged over users
/// and embedding channels.
struct SpectrumProfile {
  /// Mean amplitude per rFFT bin, length RfftBins(max_len); bin 0 is DC.
  std::vector<double> amplitude;
  /// amplitude normalised to sum 1 (a distribution over bins).
  std::vector<double> normalized;
  /// Fraction of (non-DC) energy in the lowest third / middle third /
  /// highest third of the non-DC bins.
  double low_band = 0.0;
  double mid_band = 0.0;
  double high_band = 0.0;
  /// Shannon entropy (nats) of `normalized` excluding DC: low entropy =
  /// concentrated spectrum (Amazon-like), high = scattered (ML-1M-like).
  double entropy = 0.0;
};

/// Computes the profile. Items start from `embedding_dim` random channels
/// and (when `smooth_codes`, the default) are smoothed once over their
/// top co-occurring neighbours, so behaviourally related items share code
/// structure — without that pass, distinct items look like white noise to
/// the FFT regardless of how structured the behaviour is. Deterministic
/// for a given seed.
SpectrumProfile ComputeSpectrumProfile(const data::InteractionDataset& data,
                                       int64_t max_len,
                                       int64_t embedding_dim = 16,
                                       uint64_t seed = 13,
                                       bool smooth_codes = true);

}  // namespace analysis
}  // namespace slime

#endif  // SLIME4REC_ANALYSIS_SPECTRUM_H_
