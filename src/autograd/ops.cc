#include "autograd/ops.h"

#include <algorithm>
#include <cmath>

#include "compute/kernels.h"
#include "compute/thread_pool.h"
#include "tensor/tensor_ops.h"

namespace slime {
namespace autograd {
namespace {

using compute::GrainForWork;
using compute::kElementwiseGrain;
using compute::ParallelFor;

/// Reduces a broadcast gradient back to the operand shape and accumulates.
void AccumulateBroadcast(const std::shared_ptr<Node>& node, const Tensor& g) {
  if (!node || !node->requires_grad) return;
  if (g.shape() == node->value.shape()) {
    AccumulateGrad(node, g);
  } else {
    AccumulateGrad(node, ops::ReduceTo(g, node->value.shape()));
  }
}

/// Builds a unary elementwise op where the local derivative can be computed
/// from the *input* value.
Variable UnaryFromInput(const Variable& a, float (*fwd)(float),
                        float (*dfdx)(float)) {
  Tensor out = ops::Map(a.value(), fwd);
  auto an = a.node();
  return MakeOpVariable(
      std::move(out), {an}, [an, dfdx](const Tensor& g) {
        Tensor dx(g.shape());
        const float* px = an->value.data();
        const float* pg = g.data();
        float* pd = dx.data();
        ParallelFor(0, g.numel(), kElementwiseGrain,
                    [&](int64_t lo, int64_t hi) {
                      for (int64_t i = lo; i < hi; ++i)
                        pd[i] = pg[i] * dfdx(px[i]);
                    });
        AccumulateGrad(an, dx);
      });
}

}  // namespace

Variable Add(const Variable& a, const Variable& b) {
  Tensor out = ops::Add(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeOpVariable(std::move(out), {an, bn}, [an, bn](const Tensor& g) {
    AccumulateBroadcast(an, g);
    AccumulateBroadcast(bn, g);
  });
}

Variable Sub(const Variable& a, const Variable& b) {
  Tensor out = ops::Sub(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeOpVariable(std::move(out), {an, bn}, [an, bn](const Tensor& g) {
    AccumulateBroadcast(an, g);
    if (bn && bn->requires_grad) {
      AccumulateBroadcast(bn, ops::MulScalar(g, -1.0f));
    }
  });
}

Variable Mul(const Variable& a, const Variable& b) {
  Tensor out = ops::Mul(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeOpVariable(std::move(out), {an, bn}, [an, bn](const Tensor& g) {
    if (an && an->requires_grad)
      AccumulateBroadcast(an, ops::Mul(g, bn->value));
    if (bn && bn->requires_grad)
      AccumulateBroadcast(bn, ops::Mul(g, an->value));
  });
}

Variable Div(const Variable& a, const Variable& b) {
  Tensor out = ops::Div(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeOpVariable(std::move(out), {an, bn}, [an, bn](const Tensor& g) {
    if (an && an->requires_grad)
      AccumulateBroadcast(an, ops::Div(g, bn->value));
    if (bn && bn->requires_grad) {
      // d/db (a/b) = -a / b^2
      Tensor t = ops::Mul(g, an->value);
      t = ops::Div(t, ops::Mul(bn->value, bn->value));
      AccumulateBroadcast(bn, ops::MulScalar(t, -1.0f));
    }
  });
}

Variable Neg(const Variable& a) { return MulScalar(a, -1.0f); }

Variable AddScalar(const Variable& a, float s) {
  Tensor out = ops::AddScalar(a.value(), s);
  auto an = a.node();
  return MakeOpVariable(std::move(out), {an},
                        [an](const Tensor& g) { AccumulateGrad(an, g); });
}

Variable MulScalar(const Variable& a, float s) {
  Tensor out = ops::MulScalar(a.value(), s);
  auto an = a.node();
  return MakeOpVariable(std::move(out), {an}, [an, s](const Tensor& g) {
    AccumulateGrad(an, ops::MulScalar(g, s));
  });
}

Variable MulConst(const Variable& a, const Tensor& c) {
  Tensor out = ops::Mul(a.value(), c);
  SLIME_CHECK_MSG(out.shape() == a.value().shape(),
                  "MulConst mask must broadcast to the input shape");
  auto an = a.node();
  Tensor cc = c;  // shares storage; cheap
  return MakeOpVariable(std::move(out), {an}, [an, cc](const Tensor& g) {
    AccumulateGrad(an, ops::Mul(g, cc));
  });
}

Variable AddConst(const Variable& a, const Tensor& c) {
  Tensor out = ops::Add(a.value(), c);
  SLIME_CHECK(out.shape() == a.value().shape());
  auto an = a.node();
  return MakeOpVariable(std::move(out), {an},
                        [an](const Tensor& g) { AccumulateGrad(an, g); });
}

Variable Relu(const Variable& a) {
  return UnaryFromInput(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x) { return x > 0.0f ? 1.0f : 0.0f; });
}

Variable Gelu(const Variable& a) {
  // gelu(x) = x * Phi(x); d/dx = Phi(x) + x * phi(x). Both directions are
  // kernel-table entries so backends can swap implementations.
  Tensor out(a.value().shape());
  compute::Dispatch().gelu(a.value().data(), out.data(), out.numel());
  auto an = a.node();
  return MakeOpVariable(std::move(out), {an}, [an](const Tensor& g) {
    Tensor dx(g.shape());
    compute::Dispatch().gelu_bwd(an->value.data(), g.data(), dx.data(),
                                 g.numel());
    AccumulateGrad(an, dx);
  });
}

Variable Sigmoid(const Variable& a) {
  Tensor out = ops::Map(a.value(), [](float x) {
    return x >= 0.0f ? 1.0f / (1.0f + std::exp(-x))
                     : std::exp(x) / (1.0f + std::exp(x));
  });
  auto an = a.node();
  Tensor y = out;  // alias for backward
  return MakeOpVariable(std::move(out), {an}, [an, y](const Tensor& g) {
    Tensor dx(g.shape());
    const float* py = y.data();
    const float* pg = g.data();
    float* pd = dx.data();
    ParallelFor(0, g.numel(), kElementwiseGrain,
                [&](int64_t lo, int64_t hi) {
                  for (int64_t i = lo; i < hi; ++i)
                    pd[i] = pg[i] * py[i] * (1.0f - py[i]);
                });
    AccumulateGrad(an, dx);
  });
}

Variable Tanh(const Variable& a) {
  Tensor out = ops::Map(a.value(), [](float x) { return std::tanh(x); });
  auto an = a.node();
  Tensor y = out;
  return MakeOpVariable(std::move(out), {an}, [an, y](const Tensor& g) {
    Tensor dx(g.shape());
    const float* py = y.data();
    const float* pg = g.data();
    float* pd = dx.data();
    ParallelFor(0, g.numel(), kElementwiseGrain,
                [&](int64_t lo, int64_t hi) {
                  for (int64_t i = lo; i < hi; ++i)
                    pd[i] = pg[i] * (1.0f - py[i] * py[i]);
                });
    AccumulateGrad(an, dx);
  });
}

Variable Exp(const Variable& a) {
  Tensor out = ops::Map(a.value(), [](float x) { return std::exp(x); });
  auto an = a.node();
  Tensor y = out;
  return MakeOpVariable(std::move(out), {an}, [an, y](const Tensor& g) {
    AccumulateGrad(an, ops::Mul(g, y));
  });
}

Variable Log(const Variable& a) {
  return UnaryFromInput(
      a, [](float x) { return std::log(x); },
      [](float x) { return 1.0f / x; });
}

Variable Sqrt(const Variable& a) {
  Tensor out = ops::Map(a.value(), [](float x) { return std::sqrt(x); });
  auto an = a.node();
  Tensor y = out;
  return MakeOpVariable(std::move(out), {an}, [an, y](const Tensor& g) {
    Tensor dx(g.shape());
    const float* py = y.data();
    const float* pg = g.data();
    float* pd = dx.data();
    ParallelFor(0, g.numel(), kElementwiseGrain,
                [&](int64_t lo, int64_t hi) {
                  for (int64_t i = lo; i < hi; ++i)
                    pd[i] = pg[i] * 0.5f / py[i];
                });
    AccumulateGrad(an, dx);
  });
}

Variable Reshape(const Variable& a, std::vector<int64_t> shape) {
  Tensor out = a.value().Clone().Reshape(std::move(shape));
  auto an = a.node();
  std::vector<int64_t> in_shape = a.value().shape();
  return MakeOpVariable(std::move(out), {an},
                        [an, in_shape](const Tensor& g) {
                          AccumulateGrad(an, g.Clone().Reshape(in_shape));
                        });
}

Variable TransposeLastTwo(const Variable& a) {
  Tensor out = ops::TransposeLastTwo(a.value());
  auto an = a.node();
  return MakeOpVariable(std::move(out), {an}, [an](const Tensor& g) {
    AccumulateGrad(an, ops::TransposeLastTwo(g));
  });
}

Variable Slice(const Variable& a, int64_t axis, int64_t start, int64_t end) {
  const Tensor& x = a.value();
  const int64_t rank = x.dim();
  if (axis < 0) axis += rank;
  SLIME_CHECK(axis >= 0 && axis < rank);
  SLIME_CHECK(0 <= start && start <= end && end <= x.size(axis));
  int64_t outer = 1;
  int64_t inner = 1;
  for (int64_t i = 0; i < axis; ++i) outer *= x.size(i);
  for (int64_t i = axis + 1; i < rank; ++i) inner *= x.size(i);
  const int64_t extent = x.size(axis);
  const int64_t width = end - start;
  std::vector<int64_t> out_shape = x.shape();
  out_shape[axis] = width;
  Tensor out(out_shape);
  const float* px = x.data();
  float* po = out.data();
  ParallelFor(0, outer, GrainForWork(width * inner),
              [&](int64_t lo, int64_t hi) {
                for (int64_t o = lo; o < hi; ++o) {
                  const float* src = px + (o * extent + start) * inner;
                  float* dst = po + o * width * inner;
                  std::copy(src, src + width * inner, dst);
                }
              });
  auto an = a.node();
  std::vector<int64_t> in_shape = x.shape();
  return MakeOpVariable(
      std::move(out), {an},
      [an, in_shape, outer, inner, extent, start, width](const Tensor& g) {
        Tensor dx(in_shape);
        const float* pg = g.data();
        float* pd = dx.data();
        ParallelFor(0, outer, GrainForWork(width * inner),
                    [&](int64_t lo, int64_t hi) {
                      for (int64_t o = lo; o < hi; ++o) {
                        const float* src = pg + o * width * inner;
                        float* dst = pd + (o * extent + start) * inner;
                        std::copy(src, src + width * inner, dst);
                      }
                    });
        AccumulateGrad(an, dx);
      });
}

Variable Concat(const std::vector<Variable>& vars, int64_t axis) {
  SLIME_CHECK(!vars.empty());
  const int64_t rank = vars[0].value().dim();
  if (axis < 0) axis += rank;
  SLIME_CHECK(axis >= 0 && axis < rank);
  int64_t total = 0;
  for (const auto& v : vars) {
    SLIME_CHECK_EQ(v.value().dim(), rank);
    for (int64_t i = 0; i < rank; ++i) {
      if (i != axis) SLIME_CHECK_EQ(v.value().size(i), vars[0].value().size(i));
    }
    total += v.value().size(axis);
  }
  std::vector<int64_t> out_shape = vars[0].value().shape();
  out_shape[axis] = total;
  Tensor out(out_shape);
  int64_t outer = 1;
  int64_t inner = 1;
  for (int64_t i = 0; i < axis; ++i) outer *= out_shape[i];
  for (int64_t i = axis + 1; i < rank; ++i) inner *= out_shape[i];
  // Copy each input into its slot.
  std::vector<int64_t> widths;
  int64_t off = 0;
  for (const auto& v : vars) {
    const int64_t w = v.value().size(axis);
    widths.push_back(w);
    const float* src = v.value().data();
    for (int64_t o = 0; o < outer; ++o) {
      std::copy(src + o * w * inner, src + (o + 1) * w * inner,
                out.data() + (o * total + off) * inner);
    }
    off += w;
  }
  std::vector<std::shared_ptr<Node>> parents;
  for (const auto& v : vars) parents.push_back(v.node());
  return MakeOpVariable(
      std::move(out), parents,
      [parents, widths, outer, inner, total](const Tensor& g) {
        int64_t off2 = 0;
        for (size_t i = 0; i < parents.size(); ++i) {
          const int64_t w = widths[i];
          if (parents[i] && parents[i]->requires_grad) {
            std::vector<int64_t> shape = parents[i]->value.shape();
            Tensor dx(shape);
            for (int64_t o = 0; o < outer; ++o) {
              const float* src = g.data() + (o * total + off2) * inner;
              std::copy(src, src + w * inner, dx.data() + o * w * inner);
            }
            AccumulateGrad(parents[i], dx);
          }
          off2 += w;
        }
      });
}

Variable MatMul(const Variable& a, const Variable& b) {
  Tensor out = ops::MatMul(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeOpVariable(std::move(out), {an, bn}, [an, bn](const Tensor& g) {
    if (an && an->requires_grad)
      AccumulateGrad(an, ops::MatMulTransB(g, bn->value));
    if (bn && bn->requires_grad)
      AccumulateGrad(bn, ops::MatMulTransA(an->value, g));
  });
}

Variable MatMulTransB(const Variable& a, const Variable& b) {
  Tensor out = ops::MatMulTransB(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeOpVariable(std::move(out), {an, bn}, [an, bn](const Tensor& g) {
    // y = a b^T: da = g b; db = g^T a.
    if (an && an->requires_grad)
      AccumulateGrad(an, ops::MatMul(g, bn->value));
    if (bn && bn->requires_grad)
      AccumulateGrad(bn, ops::MatMulTransA(g, an->value));
  });
}

Variable BatchMatMul(const Variable& a, const Variable& b) {
  Tensor out = ops::BatchMatMul(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeOpVariable(std::move(out), {an, bn}, [an, bn](const Tensor& g) {
    if (an && an->requires_grad)
      AccumulateGrad(an, ops::BatchMatMulTransB(g, bn->value));
    if (bn && bn->requires_grad)
      AccumulateGrad(bn, ops::BatchMatMulTransA(an->value, g));
  });
}

Variable BatchMatMulTransB(const Variable& a, const Variable& b) {
  Tensor out = ops::BatchMatMulTransB(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeOpVariable(std::move(out), {an, bn}, [an, bn](const Tensor& g) {
    // y_i = a_i b_i^T: da_i = g_i b_i; db_i = g_i^T a_i.
    if (an && an->requires_grad)
      AccumulateGrad(an, ops::BatchMatMul(g, bn->value));
    if (bn && bn->requires_grad)
      AccumulateGrad(bn, ops::BatchMatMulTransA(g, an->value));
  });
}

Variable BroadcastMatMul(const Variable& w, const Variable& x) {
  const Tensor& wt = w.value();
  const Tensor& xt = x.value();
  SLIME_CHECK_EQ(wt.dim(), 2);
  SLIME_CHECK_EQ(xt.dim(), 3);
  const int64_t batch = xt.size(0);
  const int64_t m = wt.size(0);
  const int64_t k = wt.size(1);
  SLIME_CHECK_EQ(xt.size(1), k);
  const int64_t n = xt.size(2);
  Tensor out({batch, m, n});
  {
    const auto& kt = compute::Dispatch();
    const float* pw = wt.data();
    const float* px = xt.data();
    float* po = out.data();
    // Parallel across batch items; nested kernel dispatch runs inline.
    ParallelFor(0, batch, GrainForWork(2 * m * k * n),
                [&](int64_t lo, int64_t hi) {
                  for (int64_t i = lo; i < hi; ++i) {
                    kt.matmul(pw, px + i * k * n, po + i * m * n, m, k, n);
                  }
                });
  }
  auto wn = w.node();
  auto xn = x.node();
  return MakeOpVariable(
      std::move(out), {wn, xn},
      [wn, xn, batch, m, k, n](const Tensor& g) {
        const auto& kt = compute::Dispatch();
        if (wn && wn->requires_grad) {
          // dw accumulates across batch items in index order (serial outer
          // loop keeps it deterministic); each item's matmul parallelises
          // internally.
          Tensor dw({m, k});
          Tensor tmp({m, k});
          for (int64_t i = 0; i < batch; ++i) {
            tmp.Zero();
            kt.matmul_trans_b(g.data() + i * m * n,
                              xn->value.data() + i * k * n, tmp.data(), m, n,
                              k);
            ops::AddInPlace(&dw, tmp);
          }
          AccumulateGrad(wn, dw);
        }
        if (xn && xn->requires_grad) {
          Tensor dx({batch, k, n});
          const float* pw = wn->value.data();
          const float* pg = g.data();
          float* pd = dx.data();
          ParallelFor(0, batch, GrainForWork(2 * m * k * n),
                      [&](int64_t lo, int64_t hi) {
                        for (int64_t i = lo; i < hi; ++i) {
                          kt.matmul_trans_a(pw, pg + i * m * n,
                                            pd + i * k * n, m, k, n);
                        }
                      });
          AccumulateGrad(xn, dx);
        }
      });
}

Variable Sum(const Variable& a) {
  Tensor out = Tensor::Scalar(ops::SumAll(a.value()));
  auto an = a.node();
  std::vector<int64_t> shape = a.value().shape();
  return MakeOpVariable(std::move(out), {an}, [an, shape](const Tensor& g) {
    AccumulateGrad(an, Tensor::Full(shape, g[0]));
  });
}

Variable Mean(const Variable& a) {
  const float inv = 1.0f / static_cast<float>(a.numel());
  Tensor out = Tensor::Scalar(ops::SumAll(a.value()) * inv);
  auto an = a.node();
  std::vector<int64_t> shape = a.value().shape();
  return MakeOpVariable(std::move(out), {an},
                        [an, shape, inv](const Tensor& g) {
                          AccumulateGrad(an, Tensor::Full(shape, g[0] * inv));
                        });
}

Variable SumAxis(const Variable& a, int64_t axis, bool keepdim) {
  const int64_t rank = a.value().dim();
  if (axis < 0) axis += rank;
  Tensor out = ops::SumAxis(a.value(), axis, keepdim);
  auto an = a.node();
  int64_t outer = 1;
  int64_t inner = 1;
  for (int64_t i = 0; i < axis; ++i) outer *= a.value().size(i);
  for (int64_t i = axis + 1; i < rank; ++i) inner *= a.value().size(i);
  const int64_t extent = a.value().size(axis);
  std::vector<int64_t> in_shape = a.value().shape();
  return MakeOpVariable(
      std::move(out), {an},
      [an, in_shape, outer, inner, extent](const Tensor& g) {
        Tensor dx(in_shape);
        const float* pg = g.data();
        float* pd = dx.data();
        for (int64_t o = 0; o < outer; ++o)
          for (int64_t e = 0; e < extent; ++e) {
            const float* src = pg + o * inner;
            float* dst = pd + (o * extent + e) * inner;
            for (int64_t i = 0; i < inner; ++i) dst[i] = src[i];
          }
        AccumulateGrad(an, dx);
      });
}

namespace {

/// Row-wise softmax over the last dim into a fresh tensor.
Tensor SoftmaxRows(const Tensor& x) {
  Tensor y(x.shape());
  const int64_t d = x.size(-1);
  compute::Dispatch().softmax_rows(x.data(), y.data(), x.numel() / d, d);
  return y;
}

}  // namespace

Variable Softmax(const Variable& a) {
  Tensor y = SoftmaxRows(a.value());
  auto an = a.node();
  Tensor ycopy = y;
  return MakeOpVariable(std::move(y), {an}, [an, ycopy](const Tensor& g) {
    // dx = y * (g - sum(g*y)) per row.
    Tensor dx(g.shape());
    const int64_t d = g.size(-1);
    compute::Dispatch().softmax_rows_bwd(ycopy.data(), g.data(), dx.data(),
                                         g.numel() / d, d);
    AccumulateGrad(an, dx);
  });
}

Variable LogSoftmax(const Variable& a) {
  const Tensor& x = a.value();
  Tensor y(x.shape());
  const int64_t d = x.size(-1);
  const int64_t rows = x.numel() / d;
  const float* px = x.data();
  float* py = y.data();
  ParallelFor(0, rows, GrainForWork(4 * d), [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const float* in = px + r * d;
      float* out = py + r * d;
      float mx = in[0];
      for (int64_t i = 1; i < d; ++i) mx = std::max(mx, in[i]);
      double z = 0.0;
      for (int64_t i = 0; i < d; ++i) z += std::exp(in[i] - mx);
      const float lz = mx + static_cast<float>(std::log(z));
      for (int64_t i = 0; i < d; ++i) out[i] = in[i] - lz;
    }
  });
  auto an = a.node();
  Tensor ycopy = y;
  return MakeOpVariable(std::move(y), {an}, [an, ycopy, d](const Tensor& g) {
    // dx = g - softmax * rowsum(g).
    Tensor dx(g.shape());
    const int64_t rows2 = g.numel() / d;
    const float* py2 = ycopy.data();
    const float* pg = g.data();
    float* pd = dx.data();
    ParallelFor(0, rows2, GrainForWork(4 * d), [&](int64_t lo, int64_t hi) {
      for (int64_t r = lo; r < hi; ++r) {
        const float* yr = py2 + r * d;
        const float* gr = pg + r * d;
        float* dr = pd + r * d;
        double s = 0.0;
        for (int64_t i = 0; i < d; ++i) s += gr[i];
        for (int64_t i = 0; i < d; ++i)
          dr[i] = gr[i] - std::exp(yr[i]) * static_cast<float>(s);
      }
    });
    AccumulateGrad(an, dx);
  });
}

Variable CrossEntropy(const Variable& logits,
                      const std::vector<int64_t>& targets,
                      int64_t ignore_index) {
  const Tensor& x = logits.value();
  SLIME_CHECK_EQ(x.dim(), 2);
  const int64_t rows = x.size(0);
  const int64_t v = x.size(1);
  SLIME_CHECK_EQ(rows, static_cast<int64_t>(targets.size()));
  // Stable log-softmax NLL with probabilities cached for backward.
  Tensor probs = SoftmaxRows(x);
  double loss = 0.0;
  int64_t count = 0;
  const float* pp = probs.data();
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t t = targets[r];
    if (t == ignore_index) continue;
    SLIME_CHECK(t >= 0 && t < v);
    loss += -std::log(std::max(pp[r * v + t], 1e-12f));
    ++count;
  }
  SLIME_CHECK_MSG(count > 0, "CrossEntropy: every target was ignored");
  Tensor out = Tensor::Scalar(static_cast<float>(loss / count));
  auto an = logits.node();
  return MakeOpVariable(
      std::move(out), {an},
      [an, probs, targets, ignore_index, rows, v, count](const Tensor& g) {
        Tensor dx({rows, v});
        const float scale = g[0] / static_cast<float>(count);
        const float* pp2 = probs.data();
        float* pd = dx.data();
        ParallelFor(0, rows, GrainForWork(2 * v),
                    [&](int64_t lo, int64_t hi) {
                      for (int64_t r = lo; r < hi; ++r) {
                        const int64_t t = targets[r];
                        if (t == ignore_index) continue;
                        for (int64_t i = 0; i < v; ++i)
                          pd[r * v + i] = pp2[r * v + i] * scale;
                        pd[r * v + t] -= scale;
                      }
                    });
        AccumulateGrad(an, dx);
      });
}

Variable EmbeddingLookup(const Variable& weight,
                         const std::vector<int64_t>& ids,
                         std::vector<int64_t> out_shape) {
  const Tensor& w = weight.value();
  SLIME_CHECK_EQ(w.dim(), 2);
  const int64_t vocab = w.size(0);
  const int64_t d = w.size(1);
  SLIME_CHECK_EQ(ShapeNumel(out_shape), static_cast<int64_t>(ids.size()));
  std::vector<int64_t> full_shape = out_shape;
  full_shape.push_back(d);
  Tensor out(full_shape);
  const int64_t nids = static_cast<int64_t>(ids.size());
  // Bounds are validated here, once; kernels gather unchecked.
  for (int64_t i = 0; i < nids; ++i) {
    SLIME_CHECK_MSG(ids[i] >= 0 && ids[i] < vocab,
                    "embedding id " << ids[i] << " out of range [0," << vocab
                                    << ")");
  }
  compute::Dispatch().gather_rows(w.data(), ids.data(), out.data(), nids, d);
  auto wn = weight.node();
  // Backward scatter-add is serial in every backend: duplicate ids hit the
  // same row, so a row split would race and atomics would break determinism.
  return MakeOpVariable(std::move(out), {wn},
                        [wn, ids, vocab, d](const Tensor& g) {
                          Tensor dw({vocab, d});
                          compute::Dispatch().scatter_add_rows(
                              g.data(), ids.data(), dw.data(),
                              static_cast<int64_t>(ids.size()), d);
                          AccumulateGrad(wn, dw);
                        });
}

Variable LayerNorm(const Variable& x, const Variable& gamma,
                   const Variable& beta, float eps) {
  const Tensor& xt = x.value();
  const int64_t d = xt.size(-1);
  SLIME_CHECK_EQ(gamma.value().numel(), d);
  SLIME_CHECK_EQ(beta.value().numel(), d);
  const int64_t rows = xt.numel() / d;
  Tensor y(xt.shape());
  Tensor xhat(xt.shape());
  Tensor inv_std({rows});
  compute::Dispatch().layer_norm(xt.data(), gamma.value().data(),
                                 beta.value().data(), y.data(), xhat.data(),
                                 inv_std.data(), rows, d, eps);
  auto xn = x.node();
  auto gn = gamma.node();
  auto bn = beta.node();
  return MakeOpVariable(
      std::move(y), {xn, gn, bn},
      [xn, gn, bn, xhat, inv_std, rows, d](const Tensor& g) {
        const auto& kt = compute::Dispatch();
        if (gn && gn->requires_grad) {
          Tensor dgamma({d});
          Tensor dbeta({d});
          kt.layer_norm_param_bwd(g.data(), xhat.data(), dgamma.data(),
                                  dbeta.data(), rows, d);
          AccumulateGrad(gn, dgamma);
          AccumulateGrad(bn, dbeta);
        } else if (bn && bn->requires_grad) {
          Tensor dbeta({d});
          kt.layer_norm_param_bwd(g.data(), xhat.data(), /*dgamma=*/nullptr,
                                  dbeta.data(), rows, d);
          AccumulateGrad(bn, dbeta);
        }
        if (xn && xn->requires_grad) {
          Tensor dx(xn->value.shape());
          kt.layer_norm_bwd(g.data(), xhat.data(), inv_std.data(),
                            gn->value.data(), dx.data(), rows, d);
          AccumulateGrad(xn, dx);
        }
      });
}

Variable Dropout(const Variable& x, float p, bool training, Rng* rng) {
  if (!training || p <= 0.0f) return x;
  SLIME_CHECK_LT(p, 1.0f);
  const float keep = 1.0f - p;
  const float scale = 1.0f / keep;
  Tensor mask(x.value().shape());
  float* pm = mask.data();
  // Integer-threshold Bernoulli: one raw 64-bit draw per element.
  const uint64_t threshold = static_cast<uint64_t>(
      keep * 18446744073709551616.0 /* 2^64 */);
  for (int64_t i = 0; i < mask.numel(); ++i)
    pm[i] = rng->NextUint64() < threshold ? scale : 0.0f;
  return MulConst(x, mask);
}

Variable MaxPoolAxis1(const Variable& x) {
  const Tensor& xt = x.value();
  SLIME_CHECK_EQ(xt.dim(), 3);
  const int64_t b = xt.size(0);
  const int64_t t = xt.size(1);
  const int64_t f = xt.size(2);
  Tensor out({b, f});
  std::vector<int64_t> argmax(static_cast<size_t>(b * f));
  const float* px = xt.data();
  float* po = out.data();
  ParallelFor(0, b, GrainForWork(t * f), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i)
      for (int64_t j = 0; j < f; ++j) {
        float best = px[i * t * f + j];
        int64_t bi = 0;
        for (int64_t k = 1; k < t; ++k) {
          const float v = px[(i * t + k) * f + j];
          if (v > best) {
            best = v;
            bi = k;
          }
        }
        po[i * f + j] = best;
        argmax[i * f + j] = bi;
      }
  });
  auto xn = x.node();
  return MakeOpVariable(std::move(out), {xn},
                        [xn, argmax, b, t, f](const Tensor& g) {
                          Tensor dx({b, t, f});
                          const float* pg = g.data();
                          float* pd = dx.data();
                          for (int64_t i = 0; i < b; ++i)
                            for (int64_t j = 0; j < f; ++j) {
                              const int64_t k = argmax[i * f + j];
                              pd[(i * t + k) * f + j] += pg[i * f + j];
                            }
                          AccumulateGrad(xn, dx);
                        });
}

Variable HorizontalConv(const Variable& x, const Variable& w,
                        const Variable& bias) {
  const Tensor& xt = x.value();
  const Tensor& wt = w.value();
  SLIME_CHECK_EQ(xt.dim(), 3);
  SLIME_CHECK_EQ(wt.dim(), 3);
  const int64_t b = xt.size(0);
  const int64_t n = xt.size(1);
  const int64_t d = xt.size(2);
  const int64_t f = wt.size(0);
  const int64_t h = wt.size(1);
  SLIME_CHECK_EQ(wt.size(2), d);
  SLIME_CHECK_LE(h, n);
  SLIME_CHECK_EQ(bias.value().numel(), f);
  const int64_t t = n - h + 1;
  Tensor out({b, t, f});
  const float* px = xt.data();
  const float* pw = wt.data();
  const float* pb = bias.value().data();
  float* po = out.data();
  ParallelFor(0, b, GrainForWork(2 * t * f * h * d),
              [&](int64_t lo, int64_t hi) {
                for (int64_t bi = lo; bi < hi; ++bi)
                  for (int64_t ti = 0; ti < t; ++ti)
                    for (int64_t fi = 0; fi < f; ++fi) {
                      double acc = pb[fi];
                      const float* wrow = pw + fi * h * d;
                      const float* xrow = px + (bi * n + ti) * d;
                      for (int64_t e = 0; e < h * d; ++e)
                        acc += double(wrow[e]) * xrow[e];
                      po[(bi * t + ti) * f + fi] = static_cast<float>(acc);
                    }
              });
  auto xn = x.node();
  auto wn = w.node();
  auto bn = bias.node();
  return MakeOpVariable(
      std::move(out), {xn, wn, bn},
      [xn, wn, bn, b, n, d, f, h, t](const Tensor& g) {
        const float* pg = g.data();
        if (bn && bn->requires_grad) {
          Tensor db({f});
          float* pd = db.data();
          for (int64_t i = 0; i < b * t; ++i)
            for (int64_t fi = 0; fi < f; ++fi) pd[fi] += pg[i * f + fi];
          AccumulateGrad(bn, db);
        }
        if (wn && wn->requires_grad) {
          Tensor dw({f, h, d});
          float* pd = dw.data();
          const float* px2 = xn->value.data();
          for (int64_t bi = 0; bi < b; ++bi)
            for (int64_t ti = 0; ti < t; ++ti)
              for (int64_t fi = 0; fi < f; ++fi) {
                const float gv = pg[(bi * t + ti) * f + fi];
                if (gv == 0.0f) continue;
                const float* xrow = px2 + (bi * n + ti) * d;
                float* wrow = pd + fi * h * d;
                for (int64_t e = 0; e < h * d; ++e) wrow[e] += gv * xrow[e];
              }
          AccumulateGrad(wn, dw);
        }
        if (xn && xn->requires_grad) {
          // Per-batch-item writes are disjoint; dw above stays serial
          // because every item accumulates into the shared filter grad.
          Tensor dx({b, n, d});
          float* pd = dx.data();
          const float* pw2 = wn->value.data();
          ParallelFor(0, b, GrainForWork(2 * t * f * h * d),
                      [&](int64_t lo, int64_t hi) {
                        for (int64_t bi = lo; bi < hi; ++bi)
                          for (int64_t ti = 0; ti < t; ++ti)
                            for (int64_t fi = 0; fi < f; ++fi) {
                              const float gv = pg[(bi * t + ti) * f + fi];
                              if (gv == 0.0f) continue;
                              const float* wrow = pw2 + fi * h * d;
                              float* xrow = pd + (bi * n + ti) * d;
                              for (int64_t e = 0; e < h * d; ++e)
                                xrow[e] += gv * wrow[e];
                            }
                      });
          AccumulateGrad(xn, dx);
        }
      });
}

}  // namespace autograd
}  // namespace slime
