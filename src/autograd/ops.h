#ifndef SLIME4REC_AUTOGRAD_OPS_H_
#define SLIME4REC_AUTOGRAD_OPS_H_

#include <cstdint>
#include <vector>

#include "autograd/variable.h"
#include "common/random.h"

namespace slime {
namespace autograd {

/// Differentiable operations over Variables. All binary elementwise ops
/// broadcast with NumPy right-aligned semantics; broadcast gradients are
/// reduced back to the operand's shape.

// --- Elementwise arithmetic -------------------------------------------------
Variable Add(const Variable& a, const Variable& b);
Variable Sub(const Variable& a, const Variable& b);
Variable Mul(const Variable& a, const Variable& b);
Variable Div(const Variable& a, const Variable& b);
Variable Neg(const Variable& a);
Variable AddScalar(const Variable& a, float s);
Variable MulScalar(const Variable& a, float s);

/// Elementwise multiply by a constant (non-differentiated) tensor, with
/// broadcasting; used for frequency masks and attention masks.
Variable MulConst(const Variable& a, const Tensor& c);
/// Elementwise add of a constant tensor, with broadcasting.
Variable AddConst(const Variable& a, const Tensor& c);

// --- Elementwise nonlinearities ----------------------------------------------
Variable Relu(const Variable& a);
/// Exact Gaussian-error-linear-unit, matching the paper's FFN (Eq. 29).
Variable Gelu(const Variable& a);
Variable Sigmoid(const Variable& a);
Variable Tanh(const Variable& a);
Variable Exp(const Variable& a);
Variable Log(const Variable& a);
Variable Sqrt(const Variable& a);

// --- Shape manipulation ------------------------------------------------------
Variable Reshape(const Variable& a, std::vector<int64_t> shape);
Variable TransposeLastTwo(const Variable& a);
/// Slice along `axis`: indices [start, end). Produces a copy.
Variable Slice(const Variable& a, int64_t axis, int64_t start, int64_t end);
/// Concatenates along `axis`.
Variable Concat(const std::vector<Variable>& vars, int64_t axis);

// --- Matrix products ----------------------------------------------------------
/// 2-D product: (m,k) @ (k,n) -> (m,n).
Variable MatMul(const Variable& a, const Variable& b);
/// 2-D product with transposed right operand: (m,k) @ (n,k)^T -> (m,n).
Variable MatMulTransB(const Variable& a, const Variable& b);
/// Batched 3-D product: (B,m,k) @ (B,k,n) -> (B,m,n).
Variable BatchMatMul(const Variable& a, const Variable& b);
/// Batched with transposed right operand: (B,m,k) @ (B,n,k)^T -> (B,m,n).
Variable BatchMatMulTransB(const Variable& a, const Variable& b);
/// Shared left operand over a batch: (m,k) @ (B,k,n) -> (B,m,n). The weight
/// gradient sums over the batch (used by Caser's vertical convolution).
Variable BroadcastMatMul(const Variable& w, const Variable& x);

// --- Reductions ----------------------------------------------------------------
/// Sum of all elements -> rank-0 scalar.
Variable Sum(const Variable& a);
/// Mean of all elements -> rank-0 scalar.
Variable Mean(const Variable& a);
/// Sum along one axis.
Variable SumAxis(const Variable& a, int64_t axis, bool keepdim);

// --- Neural-network primitives ---------------------------------------------------
/// Softmax over the last dimension.
Variable Softmax(const Variable& a);
/// Log-softmax over the last dimension (numerically stable).
Variable LogSoftmax(const Variable& a);

/// Mean cross-entropy of row-wise logits against integer targets.
/// `targets.size()` must equal the number of rows; rows whose target equals
/// `ignore_index` contribute nothing (used by masked-item training).
Variable CrossEntropy(const Variable& logits,
                      const std::vector<int64_t>& targets,
                      int64_t ignore_index = -100);

/// Embedding lookup: rows of `weight` (V,d) gathered by `ids`, shaped
/// `out_shape` + [d]. Backward scatter-adds into the weight gradient.
Variable EmbeddingLookup(const Variable& weight,
                         const std::vector<int64_t>& ids,
                         std::vector<int64_t> out_shape);

/// Layer normalisation over the last dimension with affine parameters
/// `gamma`, `beta` of shape (d).
Variable LayerNorm(const Variable& x, const Variable& gamma,
                   const Variable& beta, float eps = 1e-12f);

/// Inverted dropout: scales kept activations by 1/(1-p). Identity when
/// `training` is false or p == 0.
Variable Dropout(const Variable& x, float p, bool training, Rng* rng);

/// Max over axis 1 of a (B,T,F) tensor -> (B,F); used by Caser.
Variable MaxPoolAxis1(const Variable& x);

/// Valid 1-D convolution over the sequence axis for Caser's horizontal
/// filters: x (B,N,d), w (F,h,d), bias (F) -> (B, N-h+1, F).
Variable HorizontalConv(const Variable& x, const Variable& w,
                        const Variable& bias);

}  // namespace autograd
}  // namespace slime

#endif  // SLIME4REC_AUTOGRAD_OPS_H_
