#ifndef SLIME4REC_AUTOGRAD_GRADCHECK_H_
#define SLIME4REC_AUTOGRAD_GRADCHECK_H_

#include <functional>
#include <string>
#include <vector>

#include "autograd/variable.h"

namespace slime {
namespace autograd {

/// Result of a finite-difference gradient verification.
struct GradCheckResult {
  bool ok = true;
  /// Largest |analytic - numeric| over all checked entries.
  double max_abs_err = 0.0;
  /// Largest relative error (|a-n| / max(1, |a|, |n|)).
  double max_rel_err = 0.0;
  std::string message;
};

/// Verifies the analytic gradients of `fn` (a scalar-valued function of the
/// given inputs) against central finite differences.
///
/// `fn` is invoked many times and MUST be deterministic (seed any internal
/// RNG identically per call). Inputs are perturbed in place through
/// mutable_value(). Tolerances are float32-appropriate defaults.
GradCheckResult CheckGradients(
    const std::function<Variable(const std::vector<Variable>&)>& fn,
    std::vector<Variable> inputs, double eps = 1e-3, double tol = 2e-2);

}  // namespace autograd
}  // namespace slime

#endif  // SLIME4REC_AUTOGRAD_GRADCHECK_H_
