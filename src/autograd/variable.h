#ifndef SLIME4REC_AUTOGRAD_VARIABLE_H_
#define SLIME4REC_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace slime {
namespace autograd {

/// A node in the dynamically-built computation graph. Users interact with
/// Variable (a shared handle); Node is exposed so operation implementations
/// in ops.cc can build graphs.
struct Node {
  Tensor value;
  /// Gradient of the final scalar loss w.r.t. `value`; lazily allocated by
  /// AccumulateGrad during the backward pass.
  Tensor grad;
  bool requires_grad = false;
  /// Parents (operation inputs). Only set on op outputs.
  std::vector<std::shared_ptr<Node>> parents;
  /// Propagates `grad` into the parents. Null on leaves.
  std::function<void(const Tensor& grad_out)> backward_fn;
};

/// Adds `g` into `node->grad`, allocating zeros on first touch. No-op when
/// the node does not require grad.
void AccumulateGrad(const std::shared_ptr<Node>& node, const Tensor& g);

/// A differentiable tensor: a shared handle to a graph Node. Copying a
/// Variable aliases the node. Default-constructed Variables are undefined.
class Variable {
 public:
  Variable() = default;

  /// Wraps `value` as a graph leaf.
  explicit Variable(Tensor value, bool requires_grad = false);

  bool defined() const { return node_ != nullptr; }

  const Tensor& value() const;
  /// Mutable access for optimizers (in-place parameter updates).
  Tensor& mutable_value();

  /// Gradient accumulated by the last Backward(); zeros-shaped if the
  /// backward pass never reached this node.
  const Tensor& grad() const;
  bool has_grad() const;

  bool requires_grad() const;

  /// Clears the accumulated gradient (optimizer step boundary).
  void ZeroGrad();

  /// Runs reverse-mode differentiation from this scalar (numel == 1)
  /// variable, accumulating into every reachable requires-grad node.
  void Backward() const;

  const std::shared_ptr<Node>& node() const { return node_; }

  /// Shorthand accessors.
  const std::vector<int64_t>& shape() const { return value().shape(); }
  int64_t numel() const { return value().numel(); }
  int64_t size(int64_t i) const { return value().size(i); }

 private:
  friend Variable MakeOpVariable(Tensor value,
                                 std::vector<std::shared_ptr<Node>> parents,
                                 std::function<void(const Tensor&)> backward);

  std::shared_ptr<Node> node_;
};

/// Builds an op-output Variable; requires_grad is inferred from parents and
/// `backward` is dropped when no parent needs gradients.
Variable MakeOpVariable(Tensor value,
                        std::vector<std::shared_ptr<Node>> parents,
                        std::function<void(const Tensor&)> backward);

/// Convenience leaf constructors.
inline Variable Constant(Tensor t) { return Variable(std::move(t), false); }
inline Variable Param(Tensor t) { return Variable(std::move(t), true); }

}  // namespace autograd
}  // namespace slime

#endif  // SLIME4REC_AUTOGRAD_VARIABLE_H_
