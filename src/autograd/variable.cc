#include "autograd/variable.h"

#include <unordered_set>

#include "tensor/tensor_ops.h"

namespace slime {
namespace autograd {

void AccumulateGrad(const std::shared_ptr<Node>& node, const Tensor& g) {
  if (!node || !node->requires_grad) return;
  SLIME_CHECK_MSG(g.shape() == node->value.shape(),
                  "gradient shape " << g.ShapeString() << " != value shape "
                                    << node->value.ShapeString());
  if (!node->grad.defined()) {
    node->grad = g.Clone();
  } else {
    ops::AddInPlace(&node->grad, g);
  }
}

Variable::Variable(Tensor value, bool requires_grad) {
  node_ = std::make_shared<Node>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

const Tensor& Variable::value() const {
  SLIME_CHECK(defined());
  return node_->value;
}

Tensor& Variable::mutable_value() {
  SLIME_CHECK(defined());
  return node_->value;
}

const Tensor& Variable::grad() const {
  SLIME_CHECK(defined());
  if (!node_->grad.defined()) {
    node_->grad = Tensor::Zeros(node_->value.shape());
  }
  return node_->grad;
}

bool Variable::has_grad() const { return defined() && node_->grad.defined(); }

bool Variable::requires_grad() const {
  return defined() && node_->requires_grad;
}

void Variable::ZeroGrad() {
  SLIME_CHECK(defined());
  node_->grad = Tensor();
}

void Variable::Backward() const {
  SLIME_CHECK(defined());
  SLIME_CHECK_MSG(node_->value.numel() == 1,
                  "Backward() requires a scalar, got shape "
                      << node_->value.ShapeString());
  // Iterative post-order DFS to get a topological order (children after all
  // of their ancestors' processing). Traversal is pruned at nodes that do
  // not require grad: nothing upstream of them can receive gradient.
  std::vector<Node*> topo;
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  if (node_->requires_grad) {
    stack.push_back({node_.get(), 0});
    visited.insert(node_.get());
  }
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      Node* p = f.node->parents[f.next_parent++].get();
      if (p->requires_grad && !visited.count(p)) {
        visited.insert(p);
        stack.push_back({p, 0});
      }
    } else {
      topo.push_back(f.node);
      stack.pop_back();
    }
  }
  // topo is in post-order: parents before children. Seed the root and walk
  // children-first (reverse order).
  AccumulateGrad(node_, Tensor::Ones(node_->value.shape()));
  for (size_t i = topo.size(); i-- > 0;) {
    Node* n = topo[i];
    if (n->backward_fn && n->grad.defined()) {
      n->backward_fn(n->grad);
    }
  }
}

Variable MakeOpVariable(Tensor value,
                        std::vector<std::shared_ptr<Node>> parents,
                        std::function<void(const Tensor&)> backward) {
  Variable v(std::move(value), false);
  bool any = false;
  for (const auto& p : parents) {
    if (p && p->requires_grad) {
      any = true;
      break;
    }
  }
  if (any) {
    v.node()->requires_grad = true;
    v.node()->parents = std::move(parents);
    v.node()->backward_fn = std::move(backward);
  }
  return v;
}

}  // namespace autograd
}  // namespace slime
