#include "autograd/gradcheck.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace slime {
namespace autograd {

GradCheckResult CheckGradients(
    const std::function<Variable(const std::vector<Variable>&)>& fn,
    std::vector<Variable> inputs, double eps, double tol) {
  GradCheckResult result;

  // Analytic pass.
  for (auto& v : inputs) v.ZeroGrad();
  Variable out = fn(inputs);
  SLIME_CHECK_EQ(out.numel(), 1);
  out.Backward();
  std::vector<Tensor> analytic;
  analytic.reserve(inputs.size());
  for (auto& v : inputs) analytic.push_back(v.grad().Clone());

  // Numeric pass: central differences on every input element.
  for (size_t vi = 0; vi < inputs.size(); ++vi) {
    if (!inputs[vi].requires_grad()) continue;
    Tensor& value = inputs[vi].mutable_value();
    for (int64_t i = 0; i < value.numel(); ++i) {
      const float orig = value[i];
      value[i] = orig + static_cast<float>(eps);
      const double fp = fn(inputs).value()[0];
      value[i] = orig - static_cast<float>(eps);
      const double fm = fn(inputs).value()[0];
      value[i] = orig;
      const double numeric = (fp - fm) / (2.0 * eps);
      const double a = analytic[vi][i];
      const double abs_err = std::abs(a - numeric);
      const double rel_err =
          abs_err / std::max({1.0, std::abs(a), std::abs(numeric)});
      result.max_abs_err = std::max(result.max_abs_err, abs_err);
      result.max_rel_err = std::max(result.max_rel_err, rel_err);
      if (rel_err > tol && abs_err > tol) {
        result.ok = false;
        std::ostringstream os;
        os << "input " << vi << " elem " << i << ": analytic " << a
           << " vs numeric " << numeric;
        if (result.message.empty()) result.message = os.str();
      }
    }
  }
  return result;
}

}  // namespace autograd
}  // namespace slime
