#include "io/serializer.h"

#include <cstring>
#include <vector>

#include "common/crc32.h"
#include "io/atomic_write.h"

namespace slime {
namespace io {

void BinaryWriter::PutRaw(const void* data, size_t n) {
  buffer_.append(static_cast<const char*>(data), n);
}

void BinaryWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  PutRaw(s.data(), s.size());
}

void BinaryWriter::PutTensor(const Tensor& t) {
  PutU32(static_cast<uint32_t>(t.dim()));
  for (int64_t d : t.shape()) PutI64(d);
  PutRaw(t.data(), static_cast<size_t>(t.numel()) * sizeof(float));
}

bool BinaryReader::GetRaw(void* dst, size_t n) {
  if (n > data_.size() - pos_) return false;
  std::memcpy(dst, data_.data() + pos_, n);
  pos_ += n;
  return true;
}

bool BinaryReader::GetString(std::string* s, uint32_t max_len) {
  uint32_t len = 0;
  if (!GetU32(&len) || len > max_len || len > remaining()) return false;
  s->assign(data_.data() + pos_, len);
  pos_ += len;
  return true;
}

bool BinaryReader::GetTensor(Tensor* t) {
  uint32_t rank = 0;
  if (!GetU32(&rank) || rank > 16) return false;
  std::vector<int64_t> shape(rank);
  int64_t numel = 1;
  for (auto& d : shape) {
    // Dim caps keep `numel` far from overflow on corrupt input.
    if (!GetI64(&d) || d < 0 || d > (int64_t{1} << 32)) return false;
    numel *= d;
    if (numel > (int64_t{1} << 40)) return false;
  }
  if (static_cast<size_t>(numel) * sizeof(float) > remaining()) return false;
  Tensor out(std::move(shape));
  if (!GetRaw(out.data(), static_cast<size_t>(numel) * sizeof(float))) {
    return false;
  }
  *t = std::move(out);
  return true;
}

Status WriteEnvelope(Env* env, const std::string& path,
                     std::string_view magic, std::string_view payload,
                     bool sync_after) {
  SLIME_CHECK_EQ(magic.size(), 4u);
  std::string file;
  file.reserve(magic.size() + payload.size() + sizeof(uint32_t));
  file.append(magic);
  file.append(payload);
  const uint32_t crc = Crc32(file);
  file.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  return AtomicWriteFile(env, path, file, sync_after);
}

Result<std::string> ReadEnvelope(Env* env, const std::string& path,
                                 std::string_view magic) {
  SLIME_CHECK_EQ(magic.size(), 4u);
  Result<std::string> file = env->ReadFile(path);
  if (!file.ok()) return file.status();
  const std::string& bytes = file.value();
  if (bytes.size() < magic.size() + sizeof(uint32_t)) {
    return Status::Corruption("truncated file " + path + " (" +
                              std::to_string(bytes.size()) + " bytes)");
  }
  if (std::string_view(bytes).substr(0, 4) != magic) {
    return Status::Corruption("bad magic in " + path + ": expected '" +
                              std::string(magic) + "', found '" +
                              bytes.substr(0, 4) + "'");
  }
  const size_t body = bytes.size() - sizeof(uint32_t);
  uint32_t stored = 0;
  std::memcpy(&stored, bytes.data() + body, sizeof(stored));
  const uint32_t actual = Crc32(bytes.data(), body);
  if (stored != actual) {
    return Status::Corruption(
        "CRC mismatch in " + path +
        " (file truncated or bytes flipped): stored " +
        std::to_string(stored) + ", computed " + std::to_string(actual));
  }
  return bytes.substr(magic.size(), body - magic.size());
}

}  // namespace io
}  // namespace slime
