#include "io/checkpoint.h"

#include <cstdint>
#include <cstring>
#include <map>
#include <vector>

#include "io/serializer.h"
#include "tensor/tensor.h"

namespace slime {
namespace io {
namespace {

constexpr std::string_view kMagicV1 = "SLM1";
constexpr std::string_view kMagicV2 = "SLM2";

/// Parses the shared entry layout (count + named tensors) of v1/v2 bodies
/// into `module`, validating names and shapes against the live model.
Status ParseBody(nn::Module* module, std::string_view body,
                 const std::string& path) {
  BinaryReader reader(body);
  uint64_t count = 0;
  if (!reader.GetU64(&count)) {
    return Status::Corruption("truncated checkpoint header in " + path);
  }
  auto params = module->NamedParameters();
  std::map<std::string, autograd::Variable*> by_name;
  for (auto& [name, variable] : params) {
    by_name[name] = &variable;
  }
  if (count != by_name.size()) {
    return Status::InvalidArgument(
        "checkpoint has " + std::to_string(count) + " parameters, model has " +
        std::to_string(by_name.size()));
  }
  for (uint64_t i = 0; i < count; ++i) {
    std::string name;
    if (!reader.GetString(&name, /*max_len=*/4096)) {
      return Status::Corruption("bad parameter name length in " + path);
    }
    uint32_t rank = 0;
    if (!reader.GetU32(&rank) || rank > 16) {
      return Status::Corruption("bad parameter header for '" + name + "'");
    }
    std::vector<int64_t> shape(rank);
    for (auto& d : shape) {
      if (!reader.GetI64(&d) || d < 0) {
        return Status::Corruption("bad shape for '" + name + "'");
      }
    }
    const auto it = by_name.find(name);
    if (it == by_name.end()) {
      return Status::InvalidArgument("model has no parameter '" + name + "'");
    }
    Tensor& value = it->second->mutable_value();
    if (value.shape() != shape) {
      return Status::InvalidArgument(
          "shape mismatch for '" + name + "': checkpoint " +
          ShapeToString(shape) + " vs model " + value.ShapeString());
    }
    if (!reader.GetRaw(value.data(),
                       static_cast<size_t>(value.numel()) * sizeof(float))) {
      return Status::Corruption("truncated data for '" + name + "'");
    }
  }
  return Status::OK();
}

}  // namespace

Status SaveCheckpoint(const nn::Module& module, const std::string& path,
                      Env* env) {
  if (env == nullptr) env = Env::Default();
  const auto params = module.NamedParameters();
  BinaryWriter writer;
  writer.PutU64(params.size());
  for (const auto& [name, variable] : params) {
    writer.PutString(name);
    writer.PutTensor(variable.value());
  }
  return WriteEnvelope(env, path, kMagicV2, writer.buffer());
}

Status LoadCheckpoint(nn::Module* module, const std::string& path, Env* env) {
  if (env == nullptr) env = Env::Default();
  Result<std::string> file = env->ReadFile(path);
  if (!file.ok()) return file.status();
  const std::string& bytes = file.value();
  if (bytes.size() >= 4 && std::string_view(bytes).substr(0, 4) == kMagicV1) {
    // Legacy v1: entry layout with no CRC footer.
    return ParseBody(module, std::string_view(bytes).substr(4), path);
  }
  // v2 (or corrupt/foreign): envelope verification reports truncation, bad
  // magic and bit flips as Corruption before any parsing happens.
  Result<std::string> payload = ReadEnvelope(env, path, kMagicV2);
  if (!payload.ok()) return payload.status();
  return ParseBody(module, payload.value(), path);
}

}  // namespace io
}  // namespace slime
