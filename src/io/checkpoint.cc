#include "io/checkpoint.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>

#include "tensor/tensor.h"

namespace slime {
namespace io {
namespace {

constexpr char kMagic[4] = {'S', 'L', 'M', '1'};

template <typename T>
void WritePod(std::ofstream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

Status SaveCheckpoint(const nn::Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  const auto params = module.NamedParameters();
  out.write(kMagic, sizeof(kMagic));
  WritePod<uint64_t>(out, params.size());
  for (const auto& [name, variable] : params) {
    const Tensor& value = variable.value();
    WritePod<uint32_t>(out, static_cast<uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    WritePod<uint32_t>(out, static_cast<uint32_t>(value.dim()));
    for (int64_t d : value.shape()) WritePod<int64_t>(out, d);
    out.write(reinterpret_cast<const char*>(value.data()),
              static_cast<std::streamsize>(value.numel() * sizeof(float)));
  }
  if (!out) {
    return Status::IOError("write failed for " + path);
  }
  return Status::OK();
}

Status LoadCheckpoint(nn::Module* module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open " + path);
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad checkpoint magic in " + path);
  }
  uint64_t count = 0;
  if (!ReadPod(in, &count)) {
    return Status::Corruption("truncated checkpoint header in " + path);
  }
  auto params = module->NamedParameters();
  std::map<std::string, autograd::Variable*> by_name;
  for (auto& [name, variable] : params) {
    by_name[name] = &variable;
  }
  if (count != by_name.size()) {
    return Status::InvalidArgument(
        "checkpoint has " + std::to_string(count) + " parameters, model has " +
        std::to_string(by_name.size()));
  }
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    if (!ReadPod(in, &name_len) || name_len > 4096) {
      return Status::Corruption("bad parameter name length in " + path);
    }
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    uint32_t rank = 0;
    if (!in || !ReadPod(in, &rank) || rank > 16) {
      return Status::Corruption("bad parameter header for '" + name + "'");
    }
    std::vector<int64_t> shape(rank);
    for (auto& d : shape) {
      if (!ReadPod(in, &d) || d < 0) {
        return Status::Corruption("bad shape for '" + name + "'");
      }
    }
    const auto it = by_name.find(name);
    if (it == by_name.end()) {
      return Status::InvalidArgument("model has no parameter '" + name +
                                     "'");
    }
    Tensor& value = it->second->mutable_value();
    if (value.shape() != shape) {
      return Status::InvalidArgument(
          "shape mismatch for '" + name + "': checkpoint " +
          ShapeToString(shape) + " vs model " + value.ShapeString());
    }
    in.read(reinterpret_cast<char*>(value.data()),
            static_cast<std::streamsize>(value.numel() * sizeof(float)));
    if (!in) {
      return Status::Corruption("truncated data for '" + name + "'");
    }
  }
  return Status::OK();
}

}  // namespace io
}  // namespace slime
