#ifndef SLIME4REC_IO_ENV_H_
#define SLIME4REC_IO_ENV_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace slime {
namespace io {

/// Filesystem seam for everything the checkpoint/snapshot layer touches.
/// Production code uses Env::Default() (plain POSIX files); tests substitute
/// a FaultInjectionEnv to deterministically exercise crash, short-write and
/// corruption paths without real hardware faults (the LevelDB/RocksDB
/// fault-injection pattern).
///
/// All operations are whole-file: checkpoints are small enough that staging
/// a full buffer is cheaper than streaming, and whole-file writes make the
/// atomic temp-file + rename protocol trivial to reason about.
class Env {
 public:
  virtual ~Env() = default;

  /// Reads the entire file into a string.
  virtual Result<std::string> ReadFile(const std::string& path);

  /// Creates/truncates `path` and writes `contents`. Durable on return as
  /// far as the OS buffer cache is concerned; no fsync (matching the rest
  /// of the library's single-node, experiment-oriented durability needs).
  virtual Status WriteFile(const std::string& path, std::string_view contents);

  /// Atomically replaces `to` with `from` (POSIX rename semantics: either
  /// the old `to` or the complete new file exists, never a mix).
  virtual Status RenameFile(const std::string& from, const std::string& to);

  /// Deletes a file; missing files are not an error (idempotent cleanup).
  virtual Status RemoveFile(const std::string& path);

  virtual bool FileExists(const std::string& path);

  /// The process-wide default environment (plain filesystem).
  static Env* Default();
};

/// Thrown by FaultInjectionEnv for Fault::kCrashDuringWrite: simulates the
/// process being killed mid-write. A partially-written temp file is left on
/// disk, exactly as a real kill would.
struct InjectedCrash {
  std::string path;
};

/// Wraps a base Env and injects one fault at the Nth matching operation of
/// the fault's kind (write faults count WriteFile calls, rename faults count
/// RenameFile calls, read faults count ReadFile calls). Faults are one-shot:
/// after firing, the env behaves normally until re-armed. Counting restarts
/// at every ArmFault call, so `ArmFault(f, 1)` means "the very next matching
/// operation".
class FaultInjectionEnv : public Env {
 public:
  enum class Fault {
    kNone,
    /// WriteFile fails up front; nothing is written.
    kFailWrite,
    /// WriteFile silently writes only the first half of the buffer and
    /// reports success — the save path must catch this itself.
    kShortWrite,
    /// WriteFile succeeds, then one payload byte on disk is flipped —
    /// models post-write bit rot; only a checksum can catch it.
    kCorruptAfterWrite,
    /// WriteFile writes half the buffer, then throws InjectedCrash.
    kCrashDuringWrite,
    /// RenameFile fails; source and destination are left untouched.
    kFailRename,
    /// ReadFile fails up front (EIO-style media error).
    kFailRead,
    /// ReadFile silently returns only the first half of the file and
    /// reports success — truncation the reader must detect itself.
    kShortRead,
    /// ReadFile succeeds but one payload byte in the returned buffer is
    /// flipped — at-rest bit rot surfacing on the read path; only a
    /// checksum or a validating parser can catch it.
    kCorruptRead,
  };

  explicit FaultInjectionEnv(Env* base = Env::Default()) : base_(base) {}

  /// Arms `fault` to fire on the `nth` (1-based) matching operation from
  /// now.
  void ArmFault(Fault fault, int64_t nth = 1);
  void Disarm() { fault_ = Fault::kNone; }

  /// Mutating operations (writes + renames) observed since construction.
  int64_t mutating_ops() const { return writes_seen_ + renames_seen_; }
  /// ReadFile calls observed since construction.
  int64_t reads_seen() const { return reads_seen_; }

  Result<std::string> ReadFile(const std::string& path) override;
  Status WriteFile(const std::string& path,
                   std::string_view contents) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  bool FileExists(const std::string& path) override;

 private:
  enum class OpKind { kRead, kWrite, kRename };

  bool ShouldFire(OpKind op);

  Env* base_;
  Fault fault_ = Fault::kNone;
  int64_t fire_at_ = 0;  // remaining matching ops before firing
  int64_t reads_seen_ = 0;
  int64_t writes_seen_ = 0;
  int64_t renames_seen_ = 0;
};

}  // namespace io
}  // namespace slime

#endif  // SLIME4REC_IO_ENV_H_
