#ifndef SLIME4REC_IO_ENV_H_
#define SLIME4REC_IO_ENV_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace slime {
namespace io {

/// Filesystem seam for everything the checkpoint/snapshot/WAL layer touches.
/// Production code uses Env::Default() (plain POSIX files); tests substitute
/// a FaultInjectionEnv to deterministically exercise crash, short-write and
/// corruption paths without real hardware faults (the LevelDB/RocksDB
/// fault-injection pattern).
///
/// Most operations are whole-file: checkpoints are small enough that staging
/// a full buffer is cheaper than streaming, and whole-file writes make the
/// atomic temp-file + rename protocol trivial to reason about. The two
/// exceptions are AppendFile and SyncFile, added for the write-ahead log:
/// a WAL is append-only by definition, and its durability contract ("acked
/// events survive a kill") needs an explicit sync barrier that WriteFile's
/// buffered semantics deliberately do not provide.
class Env {
 public:
  virtual ~Env() = default;

  /// Reads the entire file into a string.
  virtual Result<std::string> ReadFile(const std::string& path);

  /// Creates/truncates `path` and writes `contents`. Durable on return as
  /// far as the OS buffer cache is concerned; no fsync (matching the rest
  /// of the library's single-node, experiment-oriented durability needs).
  virtual Status WriteFile(const std::string& path, std::string_view contents);

  /// Appends `contents` to the end of `path`, creating the file if it does
  /// not exist. Same buffered durability as WriteFile: pair with SyncFile
  /// for a real barrier.
  virtual Status AppendFile(const std::string& path,
                            std::string_view contents);

  /// Durability barrier: flushes `path`'s data to stable storage (fsync).
  /// Everything written or appended to `path` before this call survives a
  /// process kill once it returns OK.
  virtual Status SyncFile(const std::string& path);

  /// Atomically replaces `to` with `from` (POSIX rename semantics: either
  /// the old `to` or the complete new file exists, never a mix).
  virtual Status RenameFile(const std::string& from, const std::string& to);

  /// Deletes a file; missing files are not an error (idempotent cleanup).
  virtual Status RemoveFile(const std::string& path);

  virtual bool FileExists(const std::string& path);

  /// The process-wide default environment (plain filesystem).
  static Env* Default();
};

/// Thrown by FaultInjectionEnv for Fault::kCrashDuringWrite: simulates the
/// process being killed mid-write (or mid-append). A partially-written file
/// is left on disk, exactly as a real kill would.
struct InjectedCrash {
  std::string path;
};

/// Wraps a base Env and injects one fault at the Nth matching operation of
/// the fault's kind (write faults count WriteFile + AppendFile calls, rename
/// faults count RenameFile calls, read faults count ReadFile calls, sync
/// faults count SyncFile calls). Faults are one-shot: after firing, the env
/// behaves normally until re-armed. Counting restarts at every ArmFault
/// call, so `ArmFault(f, 1)` means "the very next matching operation".
class FaultInjectionEnv : public Env {
 public:
  enum class Fault {
    kNone,
    /// WriteFile/AppendFile fails up front; nothing is written.
    kFailWrite,
    /// WriteFile/AppendFile silently writes only the first half of the
    /// buffer and reports success — the save path must catch this itself.
    kShortWrite,
    /// WriteFile/AppendFile succeeds, then one payload byte on disk is
    /// flipped — models post-write bit rot; only a checksum can catch it.
    kCorruptAfterWrite,
    /// WriteFile/AppendFile writes a prefix of the buffer (half by default,
    /// exactly `torn_tail_bytes` when set), then throws InjectedCrash.
    kCrashDuringWrite,
    /// AppendFile writes only a prefix (half by default, exactly
    /// `torn_tail_bytes` when set) and reports success — a silent torn
    /// tail, the lying-disk cousin of kCrashDuringWrite. On WriteFile it
    /// behaves like kShortWrite.
    kTornTailWrite,
    /// SyncFile fails: the barrier cannot be established, so nothing since
    /// the last successful sync may be acknowledged as durable.
    kFailSync,
    /// RenameFile fails; source and destination are left untouched.
    kFailRename,
    /// ReadFile fails up front (EIO-style media error).
    kFailRead,
    /// ReadFile silently returns only the first half of the file and
    /// reports success — truncation the reader must detect itself.
    kShortRead,
    /// ReadFile succeeds but one payload byte in the returned buffer is
    /// flipped — at-rest bit rot surfacing on the read path; only a
    /// checksum or a validating parser can catch it.
    kCorruptRead,
  };

  explicit FaultInjectionEnv(Env* base = Env::Default()) : base_(base) {}

  /// Arms `fault` to fire on the `nth` (1-based) matching operation from
  /// now.
  void ArmFault(Fault fault, int64_t nth = 1);
  void Disarm() { fault_ = Fault::kNone; }

  /// For kCrashDuringWrite and kTornTailWrite: exactly how many bytes of
  /// the faulted buffer land on disk (clamped to the buffer size). -1
  /// restores the default of half the buffer. Byte-granular control is what
  /// lets the kill-at-any-byte recovery property test sweep every crash
  /// offset in a WAL record or snapshot.
  void set_torn_tail_bytes(int64_t n) { torn_tail_bytes_ = n; }

  /// Mutating operations (writes + appends + renames) observed since
  /// construction.
  int64_t mutating_ops() const {
    return writes_seen_ + appends_seen_ + renames_seen_;
  }
  /// ReadFile calls observed since construction.
  int64_t reads_seen() const { return reads_seen_; }
  /// AppendFile calls observed since construction.
  int64_t appends_seen() const { return appends_seen_; }
  /// SyncFile calls observed since construction.
  int64_t syncs_seen() const { return syncs_seen_; }

  Result<std::string> ReadFile(const std::string& path) override;
  Status WriteFile(const std::string& path,
                   std::string_view contents) override;
  Status AppendFile(const std::string& path,
                    std::string_view contents) override;
  Status SyncFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  bool FileExists(const std::string& path) override;

 private:
  enum class OpKind { kRead, kWrite, kRename, kSync };

  bool ShouldFire(OpKind op);
  /// Bytes of `size` that survive a torn write: torn_tail_bytes_ when set,
  /// otherwise half.
  size_t TornPrefix(size_t size) const;

  Env* base_;
  Fault fault_ = Fault::kNone;
  int64_t fire_at_ = 0;  // remaining matching ops before firing
  int64_t torn_tail_bytes_ = -1;
  int64_t reads_seen_ = 0;
  int64_t writes_seen_ = 0;
  int64_t appends_seen_ = 0;
  int64_t renames_seen_ = 0;
  int64_t syncs_seen_ = 0;
};

}  // namespace io
}  // namespace slime

#endif  // SLIME4REC_IO_ENV_H_
