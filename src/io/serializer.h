#ifndef SLIME4REC_IO_SERIALIZER_H_
#define SLIME4REC_IO_SERIALIZER_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "io/env.h"
#include "tensor/tensor.h"

namespace slime {
namespace io {

/// Little-endian binary serialisation buffer. All multi-byte values are
/// written via memcpy of the in-memory representation; the library only
/// targets little-endian hosts (checked nowhere else either), and the
/// checkpoint CRC would reject a cross-endian file rather than misread it.
class BinaryWriter {
 public:
  void PutU8(uint8_t v) { PutPod(v); }
  void PutU32(uint32_t v) { PutPod(v); }
  void PutU64(uint64_t v) { PutPod(v); }
  void PutI64(int64_t v) { PutPod(v); }
  void PutF32(float v) { PutPod(v); }
  void PutF64(double v) { PutPod(v); }

  /// u32 length prefix + raw bytes.
  void PutString(std::string_view s);

  /// u32 rank, i64 dims, f32 payload.
  void PutTensor(const Tensor& t);

  void PutRaw(const void* data, size_t n);

  const std::string& buffer() const { return buffer_; }
  std::string&& TakeBuffer() { return std::move(buffer_); }

 private:
  template <typename T>
  void PutPod(T v) {
    PutRaw(&v, sizeof(T));
  }

  std::string buffer_;
};

/// Bounds-checked reader over a serialised buffer. Every Get returns false
/// once the buffer is exhausted or a limit is violated; callers translate
/// that into Status::Corruption with context.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  bool GetU8(uint8_t* v) { return GetPod(v); }
  bool GetU32(uint32_t* v) { return GetPod(v); }
  bool GetU64(uint64_t* v) { return GetPod(v); }
  bool GetI64(int64_t* v) { return GetPod(v); }
  bool GetF32(float* v) { return GetPod(v); }
  bool GetF64(double* v) { return GetPod(v); }

  /// Reads a u32-length-prefixed string; fails if the length exceeds
  /// `max_len` (guards against interpreting garbage as a huge allocation).
  bool GetString(std::string* s, uint32_t max_len = 1u << 20);

  /// Reads a tensor written by PutTensor (rank limit 16, non-negative dims).
  bool GetTensor(Tensor* t);

  bool GetRaw(void* dst, size_t n);

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  bool GetPod(T* v) {
    return GetRaw(v, sizeof(T));
  }

  std::string_view data_;
  size_t pos_ = 0;
};

/// Crash-safe on-disk envelope shared by model checkpoints and train-state
/// snapshots:
///
///   magic   4 bytes (caller-chosen, versioned)
///   payload arbitrary bytes
///   crc32   uint32 over magic + payload
///
/// WriteEnvelope stages the file at `path + ".tmp"`, reads it back and
/// verifies size and bytes (catching short writes and post-write corruption
/// before they can clobber the previous good file), then atomically renames
/// over `path` — the shared io::AtomicWriteFile protocol. On any failure the
/// previous `path` contents are untouched. `sync_after` additionally fsyncs
/// the renamed file: state-store snapshots need the envelope on stable
/// storage before the WAL behind it may be truncated.
Status WriteEnvelope(Env* env, const std::string& path,
                     std::string_view magic, std::string_view payload,
                     bool sync_after = false);

/// Reads and verifies an envelope, returning the payload. Truncation, a
/// magic mismatch and CRC failure all surface as Status::Corruption; a
/// missing file is an IOError.
Result<std::string> ReadEnvelope(Env* env, const std::string& path,
                                 std::string_view magic);

}  // namespace io
}  // namespace slime

#endif  // SLIME4REC_IO_SERIALIZER_H_
