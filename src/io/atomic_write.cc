#include "io/atomic_write.h"

namespace slime {
namespace io {

Status AtomicWriteFile(Env* env, const std::string& path,
                       std::string_view contents, bool sync_after) {
  const std::string tmp = path + ".tmp";
  Status st = env->WriteFile(tmp, contents);
  if (!st.ok()) {
    env->RemoveFile(tmp);
    return st;
  }
  // Read back and verify before renaming over the previous good file: a
  // short write or post-write bit flip must fail the save, not silently
  // replace a valid file with a corrupt one.
  Result<std::string> readback = env->ReadFile(tmp);
  if (!readback.ok()) {
    env->RemoveFile(tmp);
    return Status::IOError("cannot verify staged file " + tmp + ": " +
                           readback.status().message());
  }
  if (readback.value().size() != contents.size()) {
    env->RemoveFile(tmp);
    return Status::IOError("short write detected for " + tmp + ": wrote " +
                           std::to_string(contents.size()) +
                           " bytes, found " +
                           std::to_string(readback.value().size()));
  }
  if (readback.value() != contents) {
    env->RemoveFile(tmp);
    return Status::Corruption("post-write corruption detected in " + tmp +
                              " (verification failed)");
  }
  st = env->RenameFile(tmp, path);
  if (!st.ok()) {
    env->RemoveFile(tmp);
    return st;
  }
  if (sync_after) {
    SLIME_RETURN_IF_ERROR(env->SyncFile(path));
  }
  return Status::OK();
}

}  // namespace io
}  // namespace slime
