#ifndef SLIME4REC_IO_ATOMIC_WRITE_H_
#define SLIME4REC_IO_ATOMIC_WRITE_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "io/env.h"

namespace slime {
namespace io {

/// Crash-safe whole-file replacement: stage `contents` at `path + ".tmp"`,
/// read the staged file back and verify it byte-for-byte (catching short
/// writes and post-write bit rot before they can clobber the previous good
/// file), then atomically rename over `path`. With `sync_after` set, the
/// final file is fsynced before returning — required wherever a later step
/// depends on this file having reached stable storage (e.g. truncating a WAL
/// only after its snapshot is durable).
///
/// On any failure the previous `path` contents are untouched and the stray
/// `.tmp` is removed; a crash at any point leaves either the old file or the
/// complete new file at `path`, never a mix. A size mismatch on read-back is
/// an IOError ("short write detected"); a same-size content mismatch is a
/// Corruption.
///
/// This is the single implementation of the stage→verify→rename protocol
/// used by checkpoints (WriteEnvelope), dataset saves (SaveSequenceFile),
/// telemetry JSONL flushes, and state-store snapshots.
Status AtomicWriteFile(Env* env, const std::string& path,
                       std::string_view contents, bool sync_after = false);

}  // namespace io
}  // namespace slime

#endif  // SLIME4REC_IO_ATOMIC_WRITE_H_
