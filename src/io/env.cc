#include "io/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace slime {
namespace io {

namespace {

bool IsRegularFile(const std::string& path) {
  struct ::stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

}  // namespace

Result<std::string> Env::ReadFile(const std::string& path) {
  if (!IsRegularFile(path)) {
    return Status::IOError("cannot open " + path +
                           " for reading (not a regular file)");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open " + path + " for reading");
  }
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  if (in.bad()) {
    return Status::IOError("read failed for " + path);
  }
  return contents;
}

Status Env::WriteFile(const std::string& path, std::string_view contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  out.flush();
  if (!out) {
    return Status::IOError("write failed for " + path);
  }
  return Status::OK();
}

Status Env::AppendFile(const std::string& path, std::string_view contents) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) {
    return Status::IOError("cannot open " + path + " for appending");
  }
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  out.flush();
  if (!out) {
    return Status::IOError("append failed for " + path);
  }
  return Status::OK();
}

Status Env::SyncFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open " + path + " for sync");
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IOError("fsync failed for " + path);
  }
  return Status::OK();
}

Status Env::RenameFile(const std::string& from, const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return Status::IOError("rename " + from + " -> " + to + " failed");
  }
  return Status::OK();
}

Status Env::RemoveFile(const std::string& path) {
  std::remove(path.c_str());
  return Status::OK();
}

bool Env::FileExists(const std::string& path) {
  // Regular files only: a directory is not a loadable checkpoint, and
  // ResolveResumePath relies on this to map directories to their snapshot.
  return IsRegularFile(path);
}

Env* Env::Default() {
  static Env env;
  return &env;
}

void FaultInjectionEnv::ArmFault(Fault fault, int64_t nth) {
  fault_ = fault;
  fire_at_ = nth;
}

namespace {

FaultInjectionEnv::Fault const kReadFaults[] = {
    FaultInjectionEnv::Fault::kFailRead, FaultInjectionEnv::Fault::kShortRead,
    FaultInjectionEnv::Fault::kCorruptRead};

bool IsReadFault(FaultInjectionEnv::Fault f) {
  for (const auto r : kReadFaults) {
    if (f == r) return true;
  }
  return false;
}

}  // namespace

bool FaultInjectionEnv::ShouldFire(OpKind op) {
  bool matches = false;
  switch (op) {
    case OpKind::kRead:
      matches = IsReadFault(fault_);
      break;
    case OpKind::kRename:
      matches = fault_ == Fault::kFailRename;
      break;
    case OpKind::kSync:
      matches = fault_ == Fault::kFailSync;
      break;
    case OpKind::kWrite:
      matches = fault_ != Fault::kNone && fault_ != Fault::kFailRename &&
                fault_ != Fault::kFailSync && !IsReadFault(fault_);
      break;
  }
  if (!matches) return false;
  if (--fire_at_ > 0) return false;
  return true;
}

size_t FaultInjectionEnv::TornPrefix(size_t size) const {
  if (torn_tail_bytes_ < 0) return size / 2;
  return std::min(static_cast<size_t>(torn_tail_bytes_), size);
}

Result<std::string> FaultInjectionEnv::ReadFile(const std::string& path) {
  ++reads_seen_;
  if (!ShouldFire(OpKind::kRead)) {
    return base_->ReadFile(path);
  }
  const Fault fault = fault_;
  Disarm();
  switch (fault) {
    case Fault::kFailRead:
      return Status::IOError("injected read failure for " + path);
    case Fault::kShortRead: {
      Result<std::string> full = base_->ReadFile(path);
      if (!full.ok()) return full;
      // Half the bytes arrive; the env itself reports success.
      std::string& bytes = full.value();
      bytes.resize(bytes.size() / 2);
      return full;
    }
    case Fault::kCorruptRead: {
      Result<std::string> full = base_->ReadFile(path);
      if (!full.ok()) return full;
      std::string& bytes = full.value();
      if (!bytes.empty()) bytes[bytes.size() / 2] ^= 0x40;
      return full;
    }
    default:
      return base_->ReadFile(path);
  }
}

Status FaultInjectionEnv::WriteFile(const std::string& path,
                                    std::string_view contents) {
  ++writes_seen_;
  if (!ShouldFire(OpKind::kWrite)) {
    return base_->WriteFile(path, contents);
  }
  const Fault fault = fault_;
  Disarm();
  switch (fault) {
    case Fault::kFailWrite:
      return Status::IOError("injected write failure for " + path);
    case Fault::kShortWrite:
      // Half the bytes land; the env itself reports success.
      return base_->WriteFile(path, contents.substr(0, contents.size() / 2));
    case Fault::kTornTailWrite:
      return base_->WriteFile(path,
                              contents.substr(0, TornPrefix(contents.size())));
    case Fault::kCorruptAfterWrite: {
      std::string copy(contents);
      if (!copy.empty()) copy[copy.size() / 2] ^= 0x40;
      return base_->WriteFile(path, copy);
    }
    case Fault::kCrashDuringWrite: {
      // Leave a partially-written file behind, then "die".
      (void)base_->WriteFile(path,
                             contents.substr(0, TornPrefix(contents.size())));
      throw InjectedCrash{path};
    }
    default:
      return base_->WriteFile(path, contents);
  }
}

Status FaultInjectionEnv::AppendFile(const std::string& path,
                                     std::string_view contents) {
  ++appends_seen_;
  if (!ShouldFire(OpKind::kWrite)) {
    return base_->AppendFile(path, contents);
  }
  const Fault fault = fault_;
  Disarm();
  switch (fault) {
    case Fault::kFailWrite:
      return Status::IOError("injected append failure for " + path);
    case Fault::kShortWrite:
      return base_->AppendFile(path, contents.substr(0, contents.size() / 2));
    case Fault::kTornTailWrite:
      // A prefix lands and the env reports success: the torn tail is only
      // discoverable by the next recovery scan.
      return base_->AppendFile(path,
                               contents.substr(0, TornPrefix(contents.size())));
    case Fault::kCorruptAfterWrite: {
      std::string copy(contents);
      if (!copy.empty()) copy[copy.size() / 2] ^= 0x40;
      return base_->AppendFile(path, copy);
    }
    case Fault::kCrashDuringWrite: {
      (void)base_->AppendFile(path,
                              contents.substr(0, TornPrefix(contents.size())));
      throw InjectedCrash{path};
    }
    default:
      return base_->AppendFile(path, contents);
  }
}

Status FaultInjectionEnv::SyncFile(const std::string& path) {
  ++syncs_seen_;
  if (!ShouldFire(OpKind::kSync)) {
    return base_->SyncFile(path);
  }
  Disarm();
  // The data may well be in the OS cache, but the barrier was never
  // established: callers must not acknowledge anything as durable.
  return Status::IOError("injected sync failure for " + path);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  ++renames_seen_;
  if (!ShouldFire(OpKind::kRename)) {
    return base_->RenameFile(from, to);
  }
  Disarm();
  return Status::IOError("injected rename failure for " + from);
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  return base_->RemoveFile(path);
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

}  // namespace io
}  // namespace slime
