#ifndef SLIME4REC_IO_CHECKPOINT_H_
#define SLIME4REC_IO_CHECKPOINT_H_

#include <string>

#include "common/status.h"
#include "nn/module.h"

namespace slime {
namespace io {

/// Binary checkpoint format for model parameters.
///
/// Layout (little-endian):
///   magic   "SLM1" (4 bytes)
///   count   uint64        number of parameter entries
///   entries repeated:
///     name_len uint32, name bytes
///     rank     uint32, dims int64[rank]
///     data     float32[numel]
///
/// Names are the Module::NamedParameters() qualified names, so a
/// checkpoint written by a model loads only into an identically-structured
/// model — mismatches are reported, not silently ignored.

/// Writes every parameter of `module` to `path`.
Status SaveCheckpoint(const nn::Module& module, const std::string& path);

/// Loads a checkpoint into `module`. Every parameter in the module must be
/// present in the file with an identical shape, and vice versa; any
/// mismatch fails with InvalidArgument/Corruption and leaves already-copied
/// parameters modified (load into a fresh model).
Status LoadCheckpoint(nn::Module* module, const std::string& path);

}  // namespace io
}  // namespace slime

#endif  // SLIME4REC_IO_CHECKPOINT_H_
