#ifndef SLIME4REC_IO_CHECKPOINT_H_
#define SLIME4REC_IO_CHECKPOINT_H_

#include <string>

#include "common/status.h"
#include "io/env.h"
#include "nn/module.h"

namespace slime {
namespace io {

/// Binary checkpoint format for model parameters.
///
/// v2 layout (little-endian), written by SaveCheckpoint:
///   magic   "SLM2" (4 bytes)
///   count   uint64        number of parameter entries
///   entries repeated:
///     name_len uint32, name bytes
///     rank     uint32, dims int64[rank]
///     data     float32[numel]
///   crc32   uint32        CRC-32 (IEEE) over magic + all preceding bytes
///
/// v2 files are written crash-safely: the bytes are staged at
/// `path + ".tmp"`, read back and CRC-verified (catching short writes and
/// post-write bit flips), and only then atomically renamed over `path`, so
/// a failed or interrupted save always leaves the previous checkpoint
/// intact. On load, truncation, a foreign magic and any flipped bit all
/// surface as Status::Corruption rather than misread parameters.
///
/// v1 ("SLM1") files — the same entry layout with no CRC footer and no
/// atomic-write guarantee — are still readable for backward compatibility;
/// new files are always written as v2.
///
/// Names are the Module::NamedParameters() qualified names, so a
/// checkpoint written by a model loads only into an identically-structured
/// model — mismatches are reported, not silently ignored.

/// Writes every parameter of `module` to `path` (format v2, atomic).
/// `env` defaults to Env::Default(); tests pass a FaultInjectionEnv.
Status SaveCheckpoint(const nn::Module& module, const std::string& path,
                      Env* env = nullptr);

/// Loads a v2 or v1 checkpoint into `module`. Every parameter in the module
/// must be present in the file with an identical shape, and vice versa; any
/// mismatch fails with InvalidArgument/Corruption and leaves already-copied
/// parameters modified (load into a fresh model).
Status LoadCheckpoint(nn::Module* module, const std::string& path,
                      Env* env = nullptr);

}  // namespace io
}  // namespace slime

#endif  // SLIME4REC_IO_CHECKPOINT_H_
