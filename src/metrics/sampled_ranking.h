#ifndef SLIME4REC_METRICS_SAMPLED_RANKING_H_
#define SLIME4REC_METRICS_SAMPLED_RANKING_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "metrics/ranking.h"
#include "tensor/tensor.h"

namespace slime {
namespace metrics {

/// Sampled-negative evaluation: ranks the ground-truth item against
/// `num_negatives` uniformly sampled non-target items instead of the full
/// catalogue.
///
/// The paper deliberately avoids this protocol, citing Krichene & Rendle
/// (KDD'20): sampled metrics are biased estimates of the full-ranking
/// metrics and can even reorder models. We implement it (a) because many
/// earlier SR papers report it, so downstream users need it for
/// comparability, and (b) to let bench_sampled_metrics demonstrate the
/// bias empirically — reproducing the argument behind the paper's
/// Sec. IV-B protocol choice.
class SampledRankingAccumulator {
 public:
  SampledRankingAccumulator(int64_t num_negatives, Rng* rng)
      : num_negatives_(num_negatives), rng_(rng) {}

  /// `scores` is (B, num_items + 1) as in RankingAccumulator::Add; for
  /// each row the target competes against `num_negatives` sampled items
  /// (excluding the target and the padding column).
  void Add(const Tensor& scores, const std::vector<int64_t>& targets);

  const RankingAccumulator& ranks() const { return acc_; }
  double HrAt(int64_t k) const { return acc_.HrAt(k); }
  double NdcgAt(int64_t k) const { return acc_.NdcgAt(k); }
  int64_t count() const { return acc_.count(); }

 private:
  int64_t num_negatives_;
  Rng* rng_;
  RankingAccumulator acc_;
};

}  // namespace metrics
}  // namespace slime

#endif  // SLIME4REC_METRICS_SAMPLED_RANKING_H_
