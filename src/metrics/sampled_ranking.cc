#include "metrics/sampled_ranking.h"

#include "common/macros.h"

namespace slime {
namespace metrics {

void SampledRankingAccumulator::Add(const Tensor& scores,
                                    const std::vector<int64_t>& targets) {
  SLIME_CHECK_EQ(scores.dim(), 2);
  const int64_t b = scores.size(0);
  const int64_t cols = scores.size(1);
  SLIME_CHECK_EQ(b, static_cast<int64_t>(targets.size()));
  SLIME_CHECK_GE(cols - 2, num_negatives_);  // enough non-target items
  const float* p = scores.data();
  for (int64_t i = 0; i < b; ++i) {
    const int64_t t = targets[i];
    SLIME_CHECK(t >= 1 && t < cols);
    const float target_score = p[i * cols + t];
    int64_t above = 0;
    // Sample negatives without replacement via rejection; the negative
    // count is far below the catalogue size in practice.
    std::vector<bool> used(cols, false);
    used[t] = true;
    int64_t drawn = 0;
    while (drawn < num_negatives_) {
      const int64_t neg = rng_->UniformInt(1, cols - 1);
      if (used[neg]) continue;
      used[neg] = true;
      ++drawn;
      if (p[i * cols + neg] > target_score) ++above;
    }
    acc_.AddRank(above + 1);
  }
}

}  // namespace metrics
}  // namespace slime
