#include "metrics/sampled_ranking.h"

#include <utility>

#include "common/macros.h"

namespace slime {
namespace metrics {

void SampledRankingAccumulator::Add(const Tensor& scores,
                                    const std::vector<int64_t>& targets) {
  SLIME_CHECK_EQ(scores.dim(), 2);
  const int64_t b = scores.size(0);
  const int64_t cols = scores.size(1);
  SLIME_CHECK_EQ(b, static_cast<int64_t>(targets.size()));
  SLIME_CHECK_GE(cols - 2, num_negatives_);  // enough non-target items
  const float* p = scores.data();
  // Two sampling strategies by density. Sparse (the practical case:
  // negatives far below catalogue size) keeps the original rejection
  // sampler — and its exact RNG draw sequence, so sampled metrics for a
  // given seed are unchanged. Dense sampling made rejection degenerate
  // into coupon-collecting (as num_negatives -> cols-2 almost every draw
  // was already used), so it switches to a partial Fisher–Yates shuffle:
  // exactly num_negatives draws, no rejections. The FY draw order differs
  // from what rejection would have produced, but dense configurations
  // previously took unbounded time, so there are no pinned values to keep.
  const bool dense = num_negatives_ > (cols - 2) / 2;
  if (!dense) {
    // Stamp buffer hoisted out of the row loop: `used_in_row[neg] == i`
    // marks `neg` taken for row i, so rows reset in O(1) instead of
    // reallocating a vector<bool> per row.
    std::vector<int64_t> used_in_row(cols, -1);
    for (int64_t i = 0; i < b; ++i) {
      const int64_t t = targets[i];
      SLIME_CHECK(t >= 1 && t < cols);
      const float target_score = p[i * cols + t];
      used_in_row[t] = i;
      int64_t above = 0;
      int64_t drawn = 0;
      while (drawn < num_negatives_) {
        const int64_t neg = rng_->UniformInt(1, cols - 1);
        if (used_in_row[neg] == i) continue;
        used_in_row[neg] = i;
        ++drawn;
        if (p[i * cols + neg] > target_score) ++above;
      }
      acc_.AddRank(above + 1);
    }
  } else {
    std::vector<int64_t> candidates;
    candidates.reserve(static_cast<size_t>(cols - 2));
    for (int64_t i = 0; i < b; ++i) {
      const int64_t t = targets[i];
      SLIME_CHECK(t >= 1 && t < cols);
      const float target_score = p[i * cols + t];
      candidates.clear();
      for (int64_t c = 1; c < cols; ++c) {
        if (c != t) candidates.push_back(c);
      }
      const int64_t n = static_cast<int64_t>(candidates.size());
      int64_t above = 0;
      for (int64_t k = 0; k < num_negatives_; ++k) {
        const int64_t j = rng_->UniformInt(k, n - 1);
        std::swap(candidates[k], candidates[j]);
        if (p[i * cols + candidates[k]] > target_score) ++above;
      }
      acc_.AddRank(above + 1);
    }
  }
}

}  // namespace metrics
}  // namespace slime
