#ifndef SLIME4REC_METRICS_RANKING_H_
#define SLIME4REC_METRICS_RANKING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace slime {
namespace metrics {

/// Accumulator for the paper's evaluation metrics (Sec. IV-B): Hit Ratio
/// and NDCG at K in {5, 10}, computed by ranking the ground-truth item
/// against the *entire* item set with no negative sampling.
class RankingAccumulator {
 public:
  /// `scores` is (B, num_items + 1): column j scores item id j, with column
  /// 0 the padding pseudo-item (always excluded from the ranking).
  /// `targets` holds the B ground-truth item ids (1-based).
  void Add(const Tensor& scores, const std::vector<int64_t>& targets);

  /// Adds one user given the 1-based rank of its ground-truth item.
  void AddRank(int64_t rank);

  double HrAt(int64_t k) const;
  double NdcgAt(int64_t k) const;
  /// Mean reciprocal rank over all users (no cutoff); not reported in the
  /// paper's tables but commonly requested downstream.
  double Mrr() const;
  int64_t count() const { return count_; }

  /// "HR@5 0.0621  NDCG@5 0.0396  HR@10 0.0910  NDCG@10 0.0489".
  std::string Summary() const;

 private:
  int64_t count_ = 0;
  double reciprocal_rank_sum_ = 0.0;
  int64_t hits5_ = 0;
  int64_t hits10_ = 0;
  double ndcg5_ = 0.0;
  double ndcg10_ = 0.0;
};

/// Four-metric bundle used throughout the bench harness.
struct RankingMetrics {
  double hr5 = 0.0;
  double hr10 = 0.0;
  double ndcg5 = 0.0;
  double ndcg10 = 0.0;
  double mrr = 0.0;

  static RankingMetrics From(const RankingAccumulator& acc);
};

}  // namespace metrics
}  // namespace slime

#endif  // SLIME4REC_METRICS_RANKING_H_
