#include "metrics/ranking.h"

#include <cmath>
#include <sstream>

#include "common/macros.h"
#include "common/string_util.h"

namespace slime {
namespace metrics {

void RankingAccumulator::Add(const Tensor& scores,
                             const std::vector<int64_t>& targets) {
  SLIME_CHECK_EQ(scores.dim(), 2);
  const int64_t b = scores.size(0);
  const int64_t cols = scores.size(1);
  SLIME_CHECK_EQ(b, static_cast<int64_t>(targets.size()));
  const float* p = scores.data();
  for (int64_t i = 0; i < b; ++i) {
    const int64_t t = targets[i];
    SLIME_CHECK_MSG(t >= 1 && t < cols,
                    "target " << t << " outside item range [1," << cols
                              << ")");
    const float target_score = p[i * cols + t];
    // 1-based rank = 1 + number of real items strictly above the target.
    // Ties resolve in the target's favour, matching common practice.
    int64_t above = 0;
    for (int64_t j = 1; j < cols; ++j) {
      if (p[i * cols + j] > target_score) ++above;
    }
    AddRank(above + 1);
  }
}

void RankingAccumulator::AddRank(int64_t rank) {
  SLIME_CHECK_GE(rank, 1);
  ++count_;
  reciprocal_rank_sum_ += 1.0 / static_cast<double>(rank);
  if (rank <= 5) {
    ++hits5_;
    ndcg5_ += 1.0 / std::log2(static_cast<double>(rank) + 1.0);
  }
  if (rank <= 10) {
    ++hits10_;
    ndcg10_ += 1.0 / std::log2(static_cast<double>(rank) + 1.0);
  }
}

double RankingAccumulator::HrAt(int64_t k) const {
  SLIME_CHECK(k == 5 || k == 10);
  if (count_ == 0) return 0.0;
  return static_cast<double>(k == 5 ? hits5_ : hits10_) / count_;
}

double RankingAccumulator::NdcgAt(int64_t k) const {
  SLIME_CHECK(k == 5 || k == 10);
  if (count_ == 0) return 0.0;
  return (k == 5 ? ndcg5_ : ndcg10_) / count_;
}

std::string RankingAccumulator::Summary() const {
  std::ostringstream os;
  os << "HR@5 " << FormatFloat(HrAt(5), 4) << "  NDCG@5 "
     << FormatFloat(NdcgAt(5), 4) << "  HR@10 " << FormatFloat(HrAt(10), 4)
     << "  NDCG@10 " << FormatFloat(NdcgAt(10), 4);
  return os.str();
}

double RankingAccumulator::Mrr() const {
  return count_ == 0 ? 0.0 : reciprocal_rank_sum_ / count_;
}

RankingMetrics RankingMetrics::From(const RankingAccumulator& acc) {
  return {acc.HrAt(5), acc.HrAt(10), acc.NdcgAt(5), acc.NdcgAt(10),
          acc.Mrr()};
}

}  // namespace metrics
}  // namespace slime
