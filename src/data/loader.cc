#include "data/loader.h"

#include <fstream>
#include <sstream>

namespace slime {
namespace data {

Result<InteractionDataset> LoadSequenceFile(const std::string& path,
                                            const std::string& name) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open " + path);
  }
  std::vector<std::vector<int64_t>> sequences;
  int64_t max_item = 0;
  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::vector<int64_t> seq;
    int64_t id = 0;
    while (ls >> id) {
      if (id < 1) {
        return Status::Corruption("non-positive item id at line " +
                                  std::to_string(line_no) + " of " + path);
      }
      seq.push_back(id);
      max_item = std::max(max_item, id);
    }
    if (!ls.eof()) {
      return Status::Corruption("non-numeric token at line " +
                                std::to_string(line_no) + " of " + path);
    }
    if (!seq.empty()) sequences.push_back(std::move(seq));
  }
  if (sequences.empty()) {
    return Status::InvalidArgument("no sequences in " + path);
  }
  return InteractionDataset(name, std::move(sequences), max_item);
}

Status SaveSequenceFile(const InteractionDataset& dataset,
                        const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  for (const auto& seq : dataset.sequences()) {
    for (size_t i = 0; i < seq.size(); ++i) {
      if (i > 0) out << ' ';
      out << seq[i];
    }
    out << '\n';
  }
  if (!out) {
    return Status::IOError("write failed for " + path);
  }
  return Status::OK();
}

}  // namespace data
}  // namespace slime
