#include "data/loader.h"

#include "data/validation.h"
#include "io/atomic_write.h"
#include "io/env.h"

namespace slime {
namespace data {

Result<InteractionDataset> LoadSequenceFile(const std::string& path,
                                            const std::string& name) {
  ValidationOptions options;  // kStrict, default caps, Env::Default()
  return LoadSequenceFileValidated(path, name, options);
}

Status SaveSequenceFile(const InteractionDataset& dataset,
                        const std::string& path, io::Env* env) {
  if (env == nullptr) env = io::Env::Default();
  std::string payload;
  for (const auto& seq : dataset.sequences()) {
    for (size_t i = 0; i < seq.size(); ++i) {
      if (i > 0) payload += ' ';
      payload += std::to_string(seq[i]);
    }
    payload += '\n';
  }
  // Checkpoint protocol: stage, read back to catch short writes and
  // post-write bit rot, then atomically rename. A crash at any point
  // leaves either the previous dataset or a stray .tmp — never a
  // truncated dataset at `path`.
  return io::AtomicWriteFile(env, path, payload);
}

}  // namespace data
}  // namespace slime
