#ifndef SLIME4REC_DATA_DATASET_H_
#define SLIME4REC_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"

namespace slime {
namespace data {

/// Summary statistics in the format of the paper's Table I.
struct DatasetStats {
  int64_t num_users = 0;
  int64_t num_items = 0;
  int64_t num_actions = 0;
  double avg_length = 0.0;
  /// 1 - actions / (users * items).
  double sparsity = 0.0;
};

/// A sequential-recommendation dataset: one chronologically ordered item-id
/// list per user. Item ids are 1-based; id 0 is reserved for padding
/// (Eq. 1's left zero-padding).
class InteractionDataset {
 public:
  InteractionDataset() = default;
  InteractionDataset(std::string name,
                     std::vector<std::vector<int64_t>> sequences,
                     int64_t num_items);

  const std::string& name() const { return name_; }
  int64_t num_users() const {
    return static_cast<int64_t>(sequences_.size());
  }
  int64_t num_items() const { return num_items_; }
  const std::vector<std::vector<int64_t>>& sequences() const {
    return sequences_;
  }

  DatasetStats Stats() const;

  /// K-core user filtering (the paper's 5-core setting): drops users with
  /// fewer than `k` interactions.
  InteractionDataset FilterMinInteractions(int64_t k) const;

  /// Returns a copy where each item occurrence in the *training region*
  /// (everything but the last two interactions, which are the validation
  /// and test targets) is replaced by a uniformly random item with
  /// probability `epsilon`. Implements the synthetic-noise protocol used
  /// for the paper's Fig. 6 robustness study.
  InteractionDataset InjectNoise(double epsilon, Rng* rng) const;

 private:
  std::string name_;
  std::vector<std::vector<int64_t>> sequences_;
  int64_t num_items_ = 0;
};

/// One training instance: a prefix of a user's training-region sequence and
/// the item that follows it.
struct TrainSample {
  int64_t user = 0;
  std::vector<int64_t> prefix;
  int64_t target = 0;
};

/// The leave-one-out protocol of Sec. IV-B: per user, the last interaction
/// is the test target, the second-to-last the validation target, and the
/// rest is the training region. Training instances are all (prefix, next)
/// pairs inside the training region, optionally capped to the most recent
/// `max_prefixes_per_user` (0 = unlimited).
class SplitDataset {
 public:
  /// Users with fewer than 3 interactions are dropped (they cannot supply
  /// train + valid + test items).
  SplitDataset(const InteractionDataset& dataset,
               int64_t max_prefixes_per_user = 0);

  int64_t num_users() const {
    return static_cast<int64_t>(train_region_.size());
  }
  int64_t num_items() const { return num_items_; }
  const std::string& name() const { return name_; }

  const std::vector<TrainSample>& train_samples() const {
    return train_samples_;
  }
  /// Training-region sequence per user (input for validation scoring).
  const std::vector<std::vector<int64_t>>& train_region() const {
    return train_region_;
  }
  const std::vector<int64_t>& valid_targets() const { return valid_targets_; }
  const std::vector<int64_t>& test_targets() const { return test_targets_; }

  /// Input sequence for test scoring: training region + validation item.
  std::vector<int64_t> TestInput(int64_t user) const;

  /// Index of a random other training sample with the same target as
  /// `sample_index` (a semantically-positive pair in the DuoRec sense), or
  /// `sample_index` itself when the target is unique in the training set.
  int64_t SameTargetPositive(int64_t sample_index, Rng* rng) const;

 private:
  std::string name_;
  int64_t num_items_ = 0;
  std::vector<std::vector<int64_t>> train_region_;
  std::vector<int64_t> valid_targets_;
  std::vector<int64_t> test_targets_;
  std::vector<TrainSample> train_samples_;
  std::unordered_map<int64_t, std::vector<int64_t>> target_to_samples_;
};

/// Left-pads (with 0) or left-truncates `seq` to exactly `n` entries,
/// keeping the most recent items (Eq. 1).
std::vector<int64_t> PadTruncate(const std::vector<int64_t>& seq, int64_t n);

}  // namespace data
}  // namespace slime

#endif  // SLIME4REC_DATA_DATASET_H_
