#ifndef SLIME4REC_DATA_LOADER_H_
#define SLIME4REC_DATA_LOADER_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace slime {
namespace data {

/// Plain-text dataset format (one user per line, items chronologically
/// ordered, 1-based ids, whitespace separated):
///
///   <item_1> <item_2> ... <item_n>
///
/// This is the layout of the `*.txt` files shipped with the SASRec /
/// FMLP-Rec / DuoRec reference repositories (minus the leading user id
/// column, which is implicit in the line number here).

/// Loads a dataset; `name` is attached for reporting. The item vocabulary
/// size is the maximum id seen.
Result<InteractionDataset> LoadSequenceFile(const std::string& path,
                                            const std::string& name);

/// Writes a dataset in the same format (used by examples to round-trip
/// synthetic data and by tests).
Status SaveSequenceFile(const InteractionDataset& dataset,
                        const std::string& path);

}  // namespace data
}  // namespace slime

#endif  // SLIME4REC_DATA_LOADER_H_
