#ifndef SLIME4REC_DATA_LOADER_H_
#define SLIME4REC_DATA_LOADER_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace slime {

namespace io {
class Env;
}  // namespace io

namespace data {

/// Plain-text dataset format (one user per line, items chronologically
/// ordered, 1-based ids, whitespace separated):
///
///   <item_1> <item_2> ... <item_n>
///
/// This is the layout of the `*.txt` files shipped with the SASRec /
/// FMLP-Rec / DuoRec reference repositories (minus the leading user id
/// column, which is implicit in the line number here).

/// Loads a dataset; `name` is attached for reporting. The item vocabulary
/// size is the maximum id seen.
///
/// This is the strict-policy convenience wrapper over
/// LoadSequenceFileValidated (data/validation.h): the file is read through
/// io::Env, parsed overflow-safely with std::from_chars, and bounded by the
/// default ValidationLimits resource caps. The first malformed token fails
/// the load with a typed Status naming the line; pass
/// ValidationPolicy::kRepair to the validated entry point to salvage
/// partially corrupt files instead.
Result<InteractionDataset> LoadSequenceFile(const std::string& path,
                                            const std::string& name);

/// Writes a dataset in the same format (used by examples to round-trip
/// synthetic data and by tests). Crash-safe via the checkpoint protocol:
/// the bytes are staged at `path + ".tmp"`, read back and verified, then
/// atomically renamed over `path` — a mid-write crash or short write never
/// leaves a truncated dataset where a good one stood. `env` defaults to
/// Env::Default(); tests pass a FaultInjectionEnv.
Status SaveSequenceFile(const InteractionDataset& dataset,
                        const std::string& path, io::Env* env = nullptr);

}  // namespace data
}  // namespace slime

#endif  // SLIME4REC_DATA_LOADER_H_
