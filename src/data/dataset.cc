#include "data/dataset.h"

#include <algorithm>

#include "common/macros.h"

namespace slime {
namespace data {

InteractionDataset::InteractionDataset(
    std::string name, std::vector<std::vector<int64_t>> sequences,
    int64_t num_items)
    : name_(std::move(name)),
      sequences_(std::move(sequences)),
      num_items_(num_items) {
  for (const auto& seq : sequences_) {
    for (int64_t v : seq) {
      SLIME_CHECK_MSG(v >= 1 && v <= num_items_,
                      "item id " << v << " outside [1," << num_items_ << "]");
    }
  }
}

DatasetStats InteractionDataset::Stats() const {
  DatasetStats s;
  s.num_users = num_users();
  s.num_items = num_items_;
  for (const auto& seq : sequences_) {
    s.num_actions += static_cast<int64_t>(seq.size());
  }
  s.avg_length = s.num_users > 0
                     ? static_cast<double>(s.num_actions) / s.num_users
                     : 0.0;
  const double cells =
      static_cast<double>(s.num_users) * static_cast<double>(s.num_items);
  s.sparsity = cells > 0.0 ? 1.0 - static_cast<double>(s.num_actions) / cells
                           : 0.0;
  return s;
}

InteractionDataset InteractionDataset::FilterMinInteractions(
    int64_t k) const {
  std::vector<std::vector<int64_t>> kept;
  for (const auto& seq : sequences_) {
    if (static_cast<int64_t>(seq.size()) >= k) kept.push_back(seq);
  }
  return InteractionDataset(name_, std::move(kept), num_items_);
}

InteractionDataset InteractionDataset::InjectNoise(double epsilon,
                                                   Rng* rng) const {
  SLIME_CHECK(epsilon >= 0.0 && epsilon <= 1.0);
  std::vector<std::vector<int64_t>> noisy = sequences_;
  for (auto& seq : noisy) {
    if (seq.size() < 3) continue;
    // Leave the validation and test targets (last two items) untouched so
    // the evaluation protocol measures the same ground truth.
    for (size_t i = 0; i + 2 < seq.size(); ++i) {
      if (rng->Bernoulli(epsilon)) {
        seq[i] = rng->UniformInt(1, num_items_);
      }
    }
  }
  return InteractionDataset(name_, std::move(noisy), num_items_);
}

std::vector<int64_t> PadTruncate(const std::vector<int64_t>& seq, int64_t n) {
  std::vector<int64_t> out(n, 0);
  const int64_t len = static_cast<int64_t>(seq.size());
  const int64_t take = std::min(len, n);
  // Keep the most recent `take` items, right-aligned.
  for (int64_t i = 0; i < take; ++i) {
    out[n - take + i] = seq[len - take + i];
  }
  return out;
}

SplitDataset::SplitDataset(const InteractionDataset& dataset,
                           int64_t max_prefixes_per_user)
    : name_(dataset.name()), num_items_(dataset.num_items()) {
  for (const auto& seq : dataset.sequences()) {
    if (seq.size() < 3) continue;
    const int64_t user = static_cast<int64_t>(train_region_.size());
    std::vector<int64_t> region(seq.begin(), seq.end() - 2);
    valid_targets_.push_back(seq[seq.size() - 2]);
    test_targets_.push_back(seq[seq.size() - 1]);

    // All (prefix, next) pairs inside the training region, most recent
    // first when capped.
    const int64_t region_len = static_cast<int64_t>(region.size());
    int64_t first_target = 1;
    if (max_prefixes_per_user > 0) {
      first_target = std::max<int64_t>(1, region_len - max_prefixes_per_user);
    }
    for (int64_t t = first_target; t < region_len; ++t) {
      TrainSample s;
      s.user = user;
      s.prefix.assign(region.begin(), region.begin() + t);
      s.target = region[t];
      train_samples_.push_back(std::move(s));
    }
    // The full training region predicting the validation target is NOT a
    // training sample (that item is held out); the last training sample
    // targets the final training-region item.
    train_region_.push_back(std::move(region));
  }
  for (size_t i = 0; i < train_samples_.size(); ++i) {
    target_to_samples_[train_samples_[i].target].push_back(
        static_cast<int64_t>(i));
  }
}

std::vector<int64_t> SplitDataset::TestInput(int64_t user) const {
  SLIME_CHECK(user >= 0 && user < num_users());
  std::vector<int64_t> input = train_region_[user];
  input.push_back(valid_targets_[user]);
  return input;
}

int64_t SplitDataset::SameTargetPositive(int64_t sample_index,
                                         Rng* rng) const {
  SLIME_CHECK(sample_index >= 0 &&
              sample_index < static_cast<int64_t>(train_samples_.size()));
  const int64_t target = train_samples_[sample_index].target;
  const auto it = target_to_samples_.find(target);
  SLIME_CHECK(it != target_to_samples_.end());
  const auto& candidates = it->second;
  if (candidates.size() <= 1) return sample_index;
  // Rejection-sample a different index; the candidate list is small.
  for (int attempt = 0; attempt < 8; ++attempt) {
    const int64_t pick = candidates[rng->Uniform(candidates.size())];
    if (pick != sample_index) return pick;
  }
  return candidates[0] != sample_index ? candidates[0] : candidates[1];
}

}  // namespace data
}  // namespace slime
