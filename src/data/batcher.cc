#include "data/batcher.h"

#include <numeric>

#include "common/macros.h"

namespace slime {
namespace data {

TrainBatcher::TrainBatcher(const SplitDataset* split, int64_t batch_size,
                           int64_t max_len, bool with_positives, Rng* rng)
    : split_(split),
      batch_size_(batch_size),
      max_len_(max_len),
      with_positives_(with_positives),
      rng_(rng) {
  SLIME_CHECK_GT(batch_size, 0);
  SLIME_CHECK_GT(max_len, 0);
  order_.resize(split_->train_samples().size());
  std::iota(order_.begin(), order_.end(), 0);
}

Status TrainBatcher::RestoreOrder(std::vector<int64_t> order) {
  if (order.size() != order_.size()) {
    return Status::InvalidArgument(
        "batch order has " + std::to_string(order.size()) +
        " entries, split has " + std::to_string(order_.size()) +
        " training samples");
  }
  std::vector<bool> seen(order.size(), false);
  for (int64_t idx : order) {
    if (idx < 0 || idx >= static_cast<int64_t>(order.size()) || seen[idx]) {
      return Status::InvalidArgument(
          "batch order is not a permutation (bad entry " +
          std::to_string(idx) + ")");
    }
    seen[idx] = true;
  }
  order_ = std::move(order);
  return Status::OK();
}

int64_t TrainBatcher::batches_per_epoch() const {
  const int64_t n = static_cast<int64_t>(order_.size());
  return (n + batch_size_ - 1) / batch_size_;
}

std::vector<Batch> TrainBatcher::Epoch() {
  rng_->Shuffle(&order_);
  const auto& samples = split_->train_samples();
  std::vector<Batch> batches;
  batches.reserve(batches_per_epoch());
  const int64_t n = static_cast<int64_t>(order_.size());
  for (int64_t start = 0; start < n; start += batch_size_) {
    const int64_t end = std::min(n, start + batch_size_);
    Batch b;
    b.size = end - start;
    b.max_len = max_len_;
    b.input_ids.reserve(b.size * max_len_);
    for (int64_t i = start; i < end; ++i) {
      const TrainSample& s = samples[order_[i]];
      b.user_ids.push_back(s.user);
      b.targets.push_back(s.target);
      b.raw_prefixes.push_back(s.prefix);
      const std::vector<int64_t> padded = PadTruncate(s.prefix, max_len_);
      b.input_ids.insert(b.input_ids.end(), padded.begin(), padded.end());
      if (with_positives_) {
        const int64_t pos = split_->SameTargetPositive(order_[i], rng_);
        const std::vector<int64_t> ppad =
            PadTruncate(samples[pos].prefix, max_len_);
        b.positive_input_ids.insert(b.positive_input_ids.end(), ppad.begin(),
                                    ppad.end());
      }
    }
    batches.push_back(std::move(b));
  }
  return batches;
}

std::vector<Batch> MakeEvalBatches(const SplitDataset& split, bool test,
                                   int64_t batch_size, int64_t max_len) {
  std::vector<Batch> batches;
  const int64_t users = split.num_users();
  for (int64_t start = 0; start < users; start += batch_size) {
    const int64_t end = std::min(users, start + batch_size);
    Batch b;
    b.size = end - start;
    b.max_len = max_len;
    for (int64_t u = start; u < end; ++u) {
      b.user_ids.push_back(u);
      std::vector<int64_t> input =
          test ? split.TestInput(u) : split.train_region()[u];
      b.targets.push_back(test ? split.test_targets()[u]
                               : split.valid_targets()[u]);
      b.raw_prefixes.push_back(input);
      const std::vector<int64_t> padded = PadTruncate(input, max_len);
      b.input_ids.insert(b.input_ids.end(), padded.begin(), padded.end());
    }
    batches.push_back(std::move(b));
  }
  return batches;
}

}  // namespace data
}  // namespace slime
