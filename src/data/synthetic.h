#ifndef SLIME4REC_DATA_SYNTHETIC_H_
#define SLIME4REC_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace slime {
namespace data {

/// Configuration of the synthetic sequence generator that substitutes for
/// the paper's Amazon/MovieLens/Yelp dumps (see DESIGN.md, Substitutions).
///
/// The generator realises the paper's own Figure-1 story: every user
/// interleaves several "interest tracks", each a (category, period, phase)
/// triple. A track emits one item every `period` time steps, walking a
/// deterministic within-category successor chain with probability
/// `markov_strength` (otherwise jumping to a Zipf-popular item of the same
/// category). Tracks with small periods are the user's high-frequency
/// behaviours (clothes-like), large periods the low-frequency ones
/// (electronics-like). A fraction `noise_prob` of emissions is replaced by
/// a uniformly random item. Users belong to preference clusters that share
/// category subsets, giving contrastive methods semantically similar
/// sequences across users.
struct SyntheticConfig {
  std::string name = "synthetic";
  int64_t num_users = 1000;
  int64_t num_items = 400;
  int64_t num_categories = 10;
  /// User preference clusters; categories are dealt to clusters
  /// round-robin and each user samples tracks from its cluster's
  /// categories.
  int64_t num_clusters = 8;
  /// Number of concurrent interest tracks per user, sampled uniformly.
  int64_t min_tracks = 2;
  int64_t max_tracks = 4;
  /// Candidate emission periods (in time steps) for tracks.
  std::vector<int64_t> periods = {1, 2, 3, 4, 6, 8};
  /// Target sequence lengths, sampled uniformly per user.
  int64_t min_len = 5;
  int64_t max_len = 15;
  /// Probability an emitted item is replaced by a noise item.
  double noise_prob = 0.15;
  /// Fraction of noise drawn from the emitting track's own category
  /// (confusable noise: wrong item, plausible content) instead of
  /// uniformly over the catalogue. Real interaction noise is mostly
  /// in-interest: accidental clicks land on related items.
  double category_noise_fraction = 0.7;
  /// Probability a track follows its category successor chain instead of
  /// jumping to a Zipf-popular category item.
  double markov_strength = 0.8;
  /// Zipf exponent for within-category popularity.
  double zipf_exponent = 1.2;
  uint64_t seed = 42;
};

/// Generates a dataset from `config`; deterministic for a given seed.
InteractionDataset GenerateSynthetic(const SyntheticConfig& config);

/// Scaled-down presets mirroring the relative character of the paper's five
/// benchmarks (Table I): sparsity ordering, sequence-length ordering, and
/// the dense-vs-sparse contrast between ML-1M and the Amazon sets.
/// `scale` multiplies the number of users (benches expose it through the
/// SLIME_BENCH_SCALE environment variable).
SyntheticConfig BeautySimConfig(double scale = 1.0);
SyntheticConfig ClothingSimConfig(double scale = 1.0);
SyntheticConfig SportsSimConfig(double scale = 1.0);
SyntheticConfig Ml1mSimConfig(double scale = 1.0);
SyntheticConfig YelpSimConfig(double scale = 1.0);

/// All five presets in the paper's column order.
std::vector<SyntheticConfig> AllPresets(double scale = 1.0);

}  // namespace data
}  // namespace slime

#endif  // SLIME4REC_DATA_SYNTHETIC_H_
