#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace slime {
namespace data {
namespace {

/// Contiguous item-id range [first, last] of one category (1-based ids).
struct CategoryRange {
  int64_t first = 0;
  int64_t last = 0;
  int64_t size() const { return last - first + 1; }
};

std::vector<CategoryRange> PartitionItems(int64_t num_items,
                                          int64_t num_categories) {
  std::vector<CategoryRange> ranges(num_categories);
  const int64_t base = num_items / num_categories;
  const int64_t extra = num_items % num_categories;
  int64_t next = 1;
  for (int64_t c = 0; c < num_categories; ++c) {
    const int64_t sz = base + (c < extra ? 1 : 0);
    ranges[c] = {next, next + sz - 1};
    next += sz;
  }
  return ranges;
}

/// One interleaved interest track of a user.
struct Track {
  int64_t category = 0;
  int64_t period = 1;
  int64_t phase = 0;
  int64_t current_item = 0;
};

}  // namespace

InteractionDataset GenerateSynthetic(const SyntheticConfig& config) {
  SLIME_CHECK_GE(config.num_categories, 1);
  SLIME_CHECK_GE(config.num_clusters, 1);
  SLIME_CHECK_GE(config.min_len, 3);
  SLIME_CHECK_LE(config.min_len, config.max_len);
  SLIME_CHECK(!config.periods.empty());
  SLIME_CHECK_GE(config.num_items, config.num_categories);

  Rng rng(config.seed);
  const std::vector<CategoryRange> categories =
      PartitionItems(config.num_items, config.num_categories);

  // Deal categories to clusters round-robin; each cluster prefers the
  // categories dealt to it.
  std::vector<std::vector<int64_t>> cluster_categories(config.num_clusters);
  for (int64_t c = 0; c < config.num_categories; ++c) {
    cluster_categories[c % config.num_clusters].push_back(c);
  }
  // Guarantee every cluster has at least one category.
  for (int64_t k = 0; k < config.num_clusters; ++k) {
    if (cluster_categories[k].empty()) {
      cluster_categories[k].push_back(k % config.num_categories);
    }
  }

  // Zipf popularity weights, shared shape across categories.
  std::vector<std::vector<double>> zipf(config.num_categories);
  for (int64_t c = 0; c < config.num_categories; ++c) {
    zipf[c].resize(categories[c].size());
    for (int64_t i = 0; i < categories[c].size(); ++i) {
      zipf[c][i] = 1.0 / std::pow(static_cast<double>(i + 1),
                                  config.zipf_exponent);
    }
  }

  std::vector<std::vector<int64_t>> sequences;
  sequences.reserve(config.num_users);
  for (int64_t u = 0; u < config.num_users; ++u) {
    const int64_t cluster = rng.Uniform(config.num_clusters);
    const auto& prefs = cluster_categories[cluster];

    const int64_t num_tracks =
        rng.UniformInt(config.min_tracks, config.max_tracks);
    std::vector<Track> tracks(num_tracks);
    for (auto& tr : tracks) {
      tr.category = prefs[rng.Uniform(prefs.size())];
      tr.period = config.periods[rng.Uniform(config.periods.size())];
      tr.phase = rng.Uniform(tr.period);
      const auto& range = categories[tr.category];
      tr.current_item =
          range.first + rng.Categorical(zipf[tr.category]);
    }

    const int64_t target_len = rng.UniformInt(config.min_len, config.max_len);
    // Sequences are generated *end-anchored*: position j counts back from
    // the most recent interaction, and a period-p track emits at every
    // j % p == 0. Because evaluation right-aligns sequences (left
    // zero-padding, Eq. 1), this makes a track's emissions occupy the same
    // padded-position residue class for every user — the cross-user
    // positional regularity that gives the frequency spectrum its meaning
    // (the paper's Figure 1: each behaviour lives at its own frequency).
    // Items within a track follow the category successor chain through
    // time, so walking backwards emits predecessors.
    std::vector<int64_t> reversed;
    reversed.reserve(target_len);
    for (int64_t j = 0; j < target_len; ++j) {
      // The rarest (largest-period) track due at this offset wins the slot;
      // the most frequent track is the fallback filler.
      Track* chosen = nullptr;
      for (auto& tr : tracks) {
        if (j % tr.period != 0) continue;
        if (chosen == nullptr || tr.period > chosen->period) chosen = &tr;
      }
      if (chosen == nullptr) {
        for (auto& tr : tracks) {
          if (chosen == nullptr || tr.period < chosen->period) chosen = &tr;
        }
      }
      const auto& range = categories[chosen->category];
      int64_t emitted = chosen->current_item;
      if (rng.Bernoulli(config.noise_prob)) {
        if (rng.Bernoulli(config.category_noise_fraction)) {
          // Confusable noise: a random item of the same category.
          emitted = rng.UniformInt(range.first, range.last);
        } else {
          emitted = rng.UniformInt(1, config.num_items);
        }
      }
      reversed.push_back(emitted);
      // Step the track back in time: predecessor on the chain with prob.
      // markov_strength, Zipf jump otherwise.
      if (rng.Bernoulli(config.markov_strength)) {
        chosen->current_item = chosen->current_item == range.first
                                   ? range.last
                                   : chosen->current_item - 1;
      } else {
        chosen->current_item =
            range.first + rng.Categorical(zipf[chosen->category]);
      }
    }
    std::vector<int64_t> seq(reversed.rbegin(), reversed.rend());
    // Degenerate guard: ensure the minimum length with popular items.
    while (static_cast<int64_t>(seq.size()) < config.min_len) {
      seq.push_back(rng.UniformInt(1, config.num_items));
    }
    sequences.push_back(std::move(seq));
  }
  return InteractionDataset(config.name, std::move(sequences),
                            config.num_items);
}

namespace {

int64_t Scaled(int64_t base, double scale) {
  return std::max<int64_t>(64, static_cast<int64_t>(base * scale));
}

}  // namespace

SyntheticConfig BeautySimConfig(double scale) {
  SyntheticConfig c;
  c.name = "beauty-sim";
  c.num_users = Scaled(1200, scale);
  c.num_items = 400;
  c.num_categories = 12;
  c.num_clusters = 8;
  c.min_tracks = 2;
  c.max_tracks = 4;
  c.periods = {1, 2, 3, 4, 6};
  c.min_len = 5;
  c.max_len = 16;
  c.noise_prob = 0.17;
  c.markov_strength = 0.85;
  c.zipf_exponent = 0.7;
  c.seed = 1001;
  return c;
}

SyntheticConfig ClothingSimConfig(double scale) {
  SyntheticConfig c;
  c.name = "clothing-sim";
  c.num_users = Scaled(1400, scale);
  c.num_items = 600;
  c.num_categories = 15;
  c.num_clusters = 10;
  c.min_tracks = 2;
  c.max_tracks = 4;
  c.periods = {1, 2, 3, 4, 6};
  c.min_len = 5;
  c.max_len = 12;     // shortest sequences: the paper's sparsest dataset
  c.noise_prob = 0.25;
  c.markov_strength = 0.78;
  c.zipf_exponent = 0.7;
  c.seed = 1002;
  return c;
}

SyntheticConfig SportsSimConfig(double scale) {
  SyntheticConfig c;
  c.name = "sports-sim";
  c.num_users = Scaled(1300, scale);
  c.num_items = 500;
  c.num_categories = 12;
  c.num_clusters = 8;
  c.min_tracks = 2;
  c.max_tracks = 4;
  c.periods = {1, 2, 3, 4, 6};
  c.min_len = 5;
  c.max_len = 14;
  c.noise_prob = 0.2;
  c.markov_strength = 0.82;
  c.zipf_exponent = 0.7;
  c.seed = 1003;
  return c;
}

SyntheticConfig Ml1mSimConfig(double scale) {
  SyntheticConfig c;
  c.name = "ml1m-sim";
  c.num_users = Scaled(600, scale);
  c.num_items = 300;
  c.num_categories = 10;
  c.num_clusters = 6;
  // Dense dataset: long sequences, many concurrent tracks with diverse
  // periods (the paper notes ML-1M spectra are spread over many bands).
  c.min_tracks = 3;
  c.max_tracks = 6;
  c.periods = {1, 2, 3, 4, 5, 6, 8, 12};
  c.min_len = 30;
  c.max_len = 90;
  c.noise_prob = 0.13;
  c.markov_strength = 0.85;
  c.zipf_exponent = 0.7;
  c.seed = 1004;
  return c;
}

SyntheticConfig YelpSimConfig(double scale) {
  SyntheticConfig c;
  c.name = "yelp-sim";
  c.num_users = Scaled(1200, scale);
  c.num_items = 450;
  c.num_categories = 12;
  c.num_clusters = 8;
  c.min_tracks = 2;
  c.max_tracks = 5;
  c.periods = {1, 2, 3, 4, 6, 8};
  c.min_len = 5;
  c.max_len = 16;
  c.noise_prob = 0.27;  // noisiest: business check-ins are erratic
  c.markov_strength = 0.75;
  c.zipf_exponent = 0.7;
  c.seed = 1005;
  return c;
}

std::vector<SyntheticConfig> AllPresets(double scale) {
  return {BeautySimConfig(scale), ClothingSimConfig(scale),
          SportsSimConfig(scale), Ml1mSimConfig(scale),
          YelpSimConfig(scale)};
}

}  // namespace data
}  // namespace slime
