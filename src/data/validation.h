#ifndef SLIME4REC_DATA_VALIDATION_H_
#define SLIME4REC_DATA_VALIDATION_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace slime {

namespace io {
class Env;
}  // namespace io

namespace obs {
class MetricsRegistry;
}  // namespace obs

namespace data {

/// Hardened dataset ingestion: a streaming, overflow-safe validating parser
/// behind LoadSequenceFile (the RecBole-style "one validated data module"
/// substitute, see DESIGN.md §1). Three properties the naive loader lacked:
///
///  1. **Typed failure, never UB.** Every malformed byte maps to a Status
///     (Corruption / ResourceExhausted / InvalidArgument / IOError); parsing
///     uses std::from_chars, so an out-of-range integer is reported as
///     exactly that instead of iostream failbit soup.
///  2. **Hard resource caps.** File size, line bytes, sequence length, user
///     count and vocabulary id are all bounded up front — one line saying
///     "99999999999" can no longer inflate num_items and OOM the embedding
///     table. Cap violations are kResourceExhausted, data damage is
///     kCorruption; the caller can tell "your file is corrupt" apart from
///     "your file is too big for this configuration".
///  3. **Salvage with an audit trail.** Under ValidationPolicy::kRepair the
///     parser drops bad tokens/lines, dedupes consecutive repeats and
///     (optionally) renumbers sparse vocabularies instead of dying on the
///     first bad byte — and accounts for every repair in a
///     QuarantineReport (per-error-class counts, first-N offending lines,
///     "data.*" metrics, optional JSONL dump).
///
/// The file is read through io::Env, so FaultInjectionEnv read faults
/// (kFailRead / kShortRead / kCorruptRead) apply to datasets exactly as
/// they do to checkpoints — the chaos harness relies on this.

/// What to do when a line fails validation.
enum class ValidationPolicy {
  /// First error aborts the load with a typed Status naming the line.
  kStrict,
  /// Drop bad tokens/lines, dedupe consecutive repeats, optionally
  /// renumber a sparse vocabulary; every repair is counted in the
  /// QuarantineReport. Resource caps (users / file bytes) still abort.
  kRepair,
};

/// Parses "strict" / "repair" (the CLI's --data-policy values).
Result<ValidationPolicy> ParseValidationPolicy(const std::string& text);
const char* ToString(ValidationPolicy policy);

/// Everything that can be wrong with a token or line, for quarantine
/// accounting. Order is the JSONL/metrics export order.
enum class ErrorClass {
  /// Token is not a base-10 integer (or has trailing garbage).
  kNonNumericToken = 0,
  /// Token is an integer that does not fit in int64 (std::from_chars
  /// result_out_of_range).
  kItemIdOutOfRange,
  /// Token parsed but is < 1 (0 is the padding id, negatives are garbage).
  kNonPositiveItemId,
  /// Token parsed but exceeds ValidationLimits::max_item_id.
  kItemIdAboveCap,
  /// Token equals its predecessor (repair dedupes these).
  kConsecutiveRepeat,
  /// Line longer than ValidationLimits::max_line_bytes (dropped unparsed).
  kOverlongLine,
  /// Tokens beyond ValidationLimits::max_sequence_length (truncated).
  kOverlongSequence,
  /// A non-blank line whose every token was dropped (line contributes no
  /// user).
  kEmptyAfterRepair,
};
inline constexpr int kNumErrorClasses = 8;
/// Snake-case name used in JSONL and metric names, e.g.
/// "non_numeric_token".
const char* ToString(ErrorClass error);

/// Hard resource caps enforced by the validating parser. Exceeding a cap is
/// kResourceExhausted in strict mode; in repair mode per-line caps
/// quarantine the offending line/tokens while the whole-dataset caps
/// (max_file_bytes, max_users) still abort — no policy may OOM the process.
struct ValidationLimits {
  /// Whole-file size cap (io::Env reads are whole-file).
  int64_t max_file_bytes = 1LL << 30;  // 1 GiB
  /// Longest accepted line, in bytes; longer lines are never tokenised.
  int64_t max_line_bytes = 1 << 20;  // 1 MiB
  /// Maximum users (non-blank kept lines).
  int64_t max_users = 10'000'000;
  /// Maximum items per user sequence.
  int64_t max_sequence_length = 100'000;
  /// Maximum accepted item id — the vocabulary cap. This bounds the
  /// embedding-table height downstream models allocate.
  int64_t max_item_id = 50'000'000;
};

/// One quarantined token/line sample (the first
/// ValidationOptions::max_quarantine_samples offenders are kept).
struct QuarantineSample {
  int64_t line = 0;  // 1-based line number
  ErrorClass error = ErrorClass::kNonNumericToken;
  /// Offending token (or a note for line-level errors), sanitised to
  /// printable ASCII and truncated for safe logging.
  std::string token;
};

/// Per-load accounting of everything the validator saw, kept, dropped and
/// rewrote. Returned for both policies: under kStrict it describes the
/// first (fatal) error, under kRepair the full salvage.
struct QuarantineReport {
  std::string path;
  std::string dataset;
  ValidationPolicy policy = ValidationPolicy::kStrict;

  int64_t lines_total = 0;    // all lines, including blank ones
  int64_t lines_kept = 0;     // lines that contributed a user
  int64_t lines_dropped = 0;  // non-blank lines dropped entirely
  int64_t tokens_total = 0;
  int64_t tokens_kept = 0;
  int64_t tokens_dropped = 0;

  /// Per-error-class counts, indexed by ErrorClass.
  std::array<int64_t, kNumErrorClasses> counts{};
  /// First-N offending samples, in file order.
  std::vector<QuarantineSample> samples;

  /// Vocabulary summary. When repair renumbered a sparse vocabulary,
  /// `vocab_renumbered` is true and `num_items` is the dense size;
  /// `max_item_id_seen` always reports the raw maximum kept id.
  bool vocab_renumbered = false;
  int64_t max_item_id_seen = 0;
  int64_t num_items = 0;

  int64_t count(ErrorClass error) const {
    return counts[static_cast<size_t>(error)];
  }
  /// Sum over all error classes.
  int64_t total_errors() const;

  /// JSONL rendering: one "quarantine_summary" line followed by one
  /// "quarantine_sample" line per kept sample (schema in docs/DATA.md).
  std::string ToJsonl() const;
};

/// Knobs for LoadSequenceFileValidated.
struct ValidationOptions {
  ValidationPolicy policy = ValidationPolicy::kStrict;
  ValidationLimits limits;
  /// Offending-line samples retained in the report.
  int64_t max_quarantine_samples = 32;
  /// Under kRepair: when the kept vocabulary is sparse (gaps between 1 and
  /// the max id), remap ids order-preservingly onto 1..K so num_items is
  /// the true vocabulary size instead of the largest id. Embedding tables
  /// then size to the data, not to its worst outlier.
  bool renumber_sparse_vocab = true;
  /// Filesystem seam; nullptr = io::Env::Default(). FaultInjectionEnv read
  /// faults apply.
  io::Env* env = nullptr;
  /// Optional "data.*" metrics (lines/tokens kept and dropped, one counter
  /// per error class). nullptr disables.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Loads a plain-text sequence file (see data/loader.h for the format)
/// through the validating parser. On success the returned dataset respects
/// every cap in `options.limits`. On failure the Status is typed:
/// IOError (unreadable), Corruption (malformed data, message names the
/// line), ResourceExhausted (cap exceeded), InvalidArgument (no usable
/// sequences). `report`, when non-null, is filled for both outcomes.
Result<InteractionDataset> LoadSequenceFileValidated(
    const std::string& path, const std::string& name,
    const ValidationOptions& options, QuarantineReport* report = nullptr);

/// Writes `report.ToJsonl()` crash-safely (stage + verify + atomic rename,
/// the checkpoint protocol) through `env` (nullptr = Env::Default()).
Status WriteQuarantineJsonl(const QuarantineReport& report,
                            const std::string& path, io::Env* env = nullptr);

}  // namespace data
}  // namespace slime

#endif  // SLIME4REC_DATA_VALIDATION_H_
