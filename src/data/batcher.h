#ifndef SLIME4REC_DATA_BATCHER_H_
#define SLIME4REC_DATA_BATCHER_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "data/dataset.h"

namespace slime {
namespace data {

/// A model-agnostic mini-batch. Sequences are left zero-padded to
/// `max_len` (Eq. 1); augmentation-based models additionally receive the
/// raw (unpadded) prefixes, and contrastive models with supervised
/// positives receive a second padded sequence per sample whose target item
/// matches (DuoRec semantics).
struct Batch {
  int64_t size = 0;
  int64_t max_len = 0;
  std::vector<int64_t> user_ids;             // (B)
  std::vector<int64_t> input_ids;            // (B * max_len)
  std::vector<int64_t> targets;              // (B)
  std::vector<std::vector<int64_t>> raw_prefixes;  // (B) unpadded
  /// Same-target positive sequences, (B * max_len); empty unless the
  /// batcher was constructed with_positives.
  std::vector<int64_t> positive_input_ids;
};

/// Shuffling mini-batch iterator over a SplitDataset's training samples.
class TrainBatcher {
 public:
  TrainBatcher(const SplitDataset* split, int64_t batch_size, int64_t max_len,
               bool with_positives, Rng* rng);

  /// Reshuffles and materialises one epoch of batches.
  std::vector<Batch> Epoch();

  int64_t batches_per_epoch() const;

  /// The current visit order. Epoch() shuffles this vector in place, so the
  /// order at epoch E depends on the order left by epoch E-1 — train-state
  /// snapshots must persist it (alongside the RNG state) for a resumed run
  /// to replay the exact same batches.
  const std::vector<int64_t>& order() const { return order_; }

  /// Restores an order captured by order(). Rejects anything that is not a
  /// permutation of [0, train_samples) with InvalidArgument.
  Status RestoreOrder(std::vector<int64_t> order);

 private:
  const SplitDataset* split_;
  int64_t batch_size_;
  int64_t max_len_;
  bool with_positives_;
  Rng* rng_;
  std::vector<int64_t> order_;
};

/// Builds evaluation batches: validation scores the training region against
/// the held-out validation item; test scores (training region + validation
/// item) against the held-out test item.
std::vector<Batch> MakeEvalBatches(const SplitDataset& split, bool test,
                                   int64_t batch_size, int64_t max_len);

}  // namespace data
}  // namespace slime

#endif  // SLIME4REC_DATA_BATCHER_H_
