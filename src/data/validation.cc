#include "data/validation.h"

#include <algorithm>
#include <charconv>
#include <string_view>
#include <unordered_map>

#include "io/atomic_write.h"
#include "io/env.h"
#include "observability/export.h"
#include "observability/metrics.h"

namespace slime {
namespace data {

namespace {

/// Longest token excerpt kept in a quarantine sample.
constexpr size_t kMaxSampleTokenBytes = 24;

/// Token delimiters inside a line ('\n' terminates the line itself). '\r'
/// is a delimiter so CRLF files parse as their LF twins.
bool IsDelimiter(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f';
}

/// Printable-ASCII excerpt of an offending token, safe to embed in logs and
/// JSONL regardless of what bytes the file actually contained.
std::string SanitizeToken(std::string_view token) {
  std::string out;
  const size_t n = std::min(token.size(), kMaxSampleTokenBytes);
  out.reserve(n + 3);
  for (size_t i = 0; i < n; ++i) {
    const char c = token[i];
    const auto u = static_cast<unsigned char>(c);
    out += (u >= 0x20 && u <= 0x7e) ? c : '?';
  }
  if (token.size() > kMaxSampleTokenBytes) out += "...";
  return out;
}

std::string At(int64_t line_no, const std::string& path) {
  return "at line " + std::to_string(line_no) + " of " + path;
}

/// Folds one load's report into the registry ("data.*" namespace). Called
/// on every exit path so failed loads are visible too.
void PublishMetrics(const QuarantineReport& report,
                    obs::MetricsRegistry* registry, bool ok) {
  if (registry == nullptr) return;
  registry->counter(ok ? "data.loads_ok" : "data.loads_failed").Increment();
  registry->counter("data.lines_total").Increment(report.lines_total);
  registry->counter("data.lines_kept").Increment(report.lines_kept);
  registry->counter("data.lines_dropped").Increment(report.lines_dropped);
  registry->counter("data.tokens_kept").Increment(report.tokens_kept);
  registry->counter("data.tokens_dropped").Increment(report.tokens_dropped);
  for (int i = 0; i < kNumErrorClasses; ++i) {
    if (report.counts[static_cast<size_t>(i)] > 0) {
      registry
          ->counter(std::string("data.quarantined.") +
                    ToString(static_cast<ErrorClass>(i)))
          .Increment(report.counts[static_cast<size_t>(i)]);
    }
  }
}

}  // namespace

Result<ValidationPolicy> ParseValidationPolicy(const std::string& text) {
  if (text == "strict") return ValidationPolicy::kStrict;
  if (text == "repair") return ValidationPolicy::kRepair;
  return Status::InvalidArgument("unknown validation policy '" + text +
                                 "' (expected strict or repair)");
}

const char* ToString(ValidationPolicy policy) {
  return policy == ValidationPolicy::kStrict ? "strict" : "repair";
}

const char* ToString(ErrorClass error) {
  switch (error) {
    case ErrorClass::kNonNumericToken:
      return "non_numeric_token";
    case ErrorClass::kItemIdOutOfRange:
      return "item_id_out_of_range";
    case ErrorClass::kNonPositiveItemId:
      return "non_positive_item_id";
    case ErrorClass::kItemIdAboveCap:
      return "item_id_above_cap";
    case ErrorClass::kConsecutiveRepeat:
      return "consecutive_repeat";
    case ErrorClass::kOverlongLine:
      return "overlong_line";
    case ErrorClass::kOverlongSequence:
      return "overlong_sequence";
    case ErrorClass::kEmptyAfterRepair:
      return "empty_after_repair";
  }
  return "unknown";
}

int64_t QuarantineReport::total_errors() const {
  int64_t total = 0;
  for (const int64_t c : counts) total += c;
  return total;
}

std::string QuarantineReport::ToJsonl() const {
  std::string out;
  out += "{\"type\":\"quarantine_summary\",\"dataset\":\"";
  out += obs::JsonEscape(dataset);
  out += "\",\"path\":\"";
  out += obs::JsonEscape(path);
  out += "\",\"policy\":\"";
  out += ToString(policy);
  out += "\",\"lines\":{\"total\":" + std::to_string(lines_total) +
         ",\"kept\":" + std::to_string(lines_kept) +
         ",\"dropped\":" + std::to_string(lines_dropped) + "}";
  out += ",\"tokens\":{\"total\":" + std::to_string(tokens_total) +
         ",\"kept\":" + std::to_string(tokens_kept) +
         ",\"dropped\":" + std::to_string(tokens_dropped) + "}";
  out += ",\"errors\":{";
  for (int i = 0; i < kNumErrorClasses; ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += ToString(static_cast<ErrorClass>(i));
    out += "\":" + std::to_string(counts[static_cast<size_t>(i)]);
  }
  out += "},\"vocab\":{\"renumbered\":";
  out += vocab_renumbered ? "true" : "false";
  out += ",\"max_item_id_seen\":" + std::to_string(max_item_id_seen) +
         ",\"num_items\":" + std::to_string(num_items) + "}}\n";
  for (const QuarantineSample& s : samples) {
    out += "{\"type\":\"quarantine_sample\",\"line\":" +
           std::to_string(s.line) + ",\"class\":\"";
    out += ToString(s.error);
    out += "\",\"token\":\"";
    out += obs::JsonEscape(s.token);
    out += "\"}\n";
  }
  return out;
}

Result<InteractionDataset> LoadSequenceFileValidated(
    const std::string& path, const std::string& name,
    const ValidationOptions& options, QuarantineReport* report) {
  QuarantineReport local;
  QuarantineReport& rep = report != nullptr ? *report : local;
  rep = QuarantineReport();
  rep.path = path;
  rep.dataset = name;
  rep.policy = options.policy;

  const ValidationLimits& lim = options.limits;
  const bool repair = options.policy == ValidationPolicy::kRepair;
  io::Env* env = options.env != nullptr ? options.env : io::Env::Default();

  // Records one offence; the first max_quarantine_samples get a sample.
  const auto note = [&rep, &options](int64_t line_no, ErrorClass error,
                                     std::string_view token) {
    ++rep.counts[static_cast<size_t>(error)];
    if (static_cast<int64_t>(rep.samples.size()) <
        options.max_quarantine_samples) {
      rep.samples.push_back({line_no, error, SanitizeToken(token)});
    }
  };
  const auto fail = [&rep, &options](Status st) -> Status {
    PublishMetrics(rep, options.metrics, /*ok=*/false);
    return st;
  };

  Result<std::string> file = env->ReadFile(path);
  if (!file.ok()) return fail(file.status());
  const std::string& contents = file.value();
  if (static_cast<int64_t>(contents.size()) > lim.max_file_bytes) {
    return fail(Status::ResourceExhausted(
        path + " is " + std::to_string(contents.size()) +
        " bytes (max_file_bytes " + std::to_string(lim.max_file_bytes) +
        ")"));
  }

  std::vector<std::vector<int64_t>> sequences;
  int64_t max_item = 0;
  int64_t line_no = 0;
  size_t pos = 0;
  while (pos < contents.size()) {
    const size_t nl = contents.find('\n', pos);
    const size_t line_end = nl == std::string::npos ? contents.size() : nl;
    const std::string_view line(contents.data() + pos, line_end - pos);
    pos = nl == std::string::npos ? contents.size() : nl + 1;
    ++line_no;
    ++rep.lines_total;

    if (static_cast<int64_t>(line.size()) > lim.max_line_bytes) {
      // Never tokenised: the cap exists so a gigabyte-long line costs one
      // length comparison, not a gigabyte of token scanning.
      std::string excerpt = "<";
      excerpt += std::to_string(line.size());
      excerpt += " bytes>";
      note(line_no, ErrorClass::kOverlongLine, excerpt);
      if (!repair) {
        return fail(Status::ResourceExhausted(
            "line " + At(line_no, path) + " is " +
            std::to_string(line.size()) + " bytes (max_line_bytes " +
            std::to_string(lim.max_line_bytes) + ")"));
      }
      ++rep.lines_dropped;
      continue;
    }

    std::vector<int64_t> seq;
    bool saw_token = false;
    size_t t = 0;
    while (t < line.size()) {
      while (t < line.size() && IsDelimiter(line[t])) ++t;
      if (t >= line.size()) break;
      size_t te = t;
      while (te < line.size() && !IsDelimiter(line[te])) ++te;
      const std::string_view token = line.substr(t, te - t);
      t = te;
      saw_token = true;
      ++rep.tokens_total;

      int64_t id = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), id);
      bool bad = true;
      ErrorClass error = ErrorClass::kNonNumericToken;
      if (ec == std::errc::result_out_of_range) {
        error = ErrorClass::kItemIdOutOfRange;
        if (!repair) {
          note(line_no, error, token);
          ++rep.tokens_dropped;
          return fail(Status::Corruption("item id out of range " +
                                         At(line_no, path) + ": '" +
                                         SanitizeToken(token) + "'"));
        }
      } else if (ec != std::errc() || ptr != token.data() + token.size()) {
        error = ErrorClass::kNonNumericToken;
        if (!repair) {
          note(line_no, error, token);
          ++rep.tokens_dropped;
          return fail(Status::Corruption("non-numeric token " +
                                         At(line_no, path) + ": '" +
                                         SanitizeToken(token) + "'"));
        }
      } else if (id < 1) {
        error = ErrorClass::kNonPositiveItemId;
        if (!repair) {
          note(line_no, error, token);
          ++rep.tokens_dropped;
          return fail(Status::Corruption("non-positive item id " +
                                         At(line_no, path) + ": '" +
                                         SanitizeToken(token) + "'"));
        }
      } else if (id > lim.max_item_id) {
        error = ErrorClass::kItemIdAboveCap;
        if (!repair) {
          note(line_no, error, token);
          ++rep.tokens_dropped;
          return fail(Status::ResourceExhausted(
              "item id " + std::to_string(id) + " " + At(line_no, path) +
              " exceeds max_item_id " + std::to_string(lim.max_item_id)));
        }
      } else if (repair && !seq.empty() && seq.back() == id) {
        // Strict mode keeps consecutive repeats: they are representable
        // data. Repair treats them as the stutter artefact they almost
        // always are and dedupes.
        error = ErrorClass::kConsecutiveRepeat;
      } else if (static_cast<int64_t>(seq.size()) >=
                 lim.max_sequence_length) {
        error = ErrorClass::kOverlongSequence;
        if (!repair) {
          note(line_no, error, token);
          ++rep.tokens_dropped;
          return fail(Status::ResourceExhausted(
              "sequence " + At(line_no, path) +
              " exceeds max_sequence_length " +
              std::to_string(lim.max_sequence_length)));
        }
      } else {
        bad = false;
      }
      if (bad) {
        note(line_no, error, token);
        ++rep.tokens_dropped;
        continue;
      }
      seq.push_back(id);
      ++rep.tokens_kept;
      max_item = std::max(max_item, id);
    }

    if (seq.empty()) {
      if (saw_token) {
        // Non-blank line whose every token was quarantined (repair only;
        // strict returns on the first bad token). Blank lines are simply
        // skipped, as the naive loader always did.
        note(line_no, ErrorClass::kEmptyAfterRepair, "");
        ++rep.lines_dropped;
      }
      continue;
    }
    if (static_cast<int64_t>(sequences.size()) >= lim.max_users) {
      // A hard whole-dataset cap under both policies: "repairing" an
      // oversized dataset by silently dropping the tail would be a lie.
      return fail(Status::ResourceExhausted(
          path + " has more than max_users (" +
          std::to_string(lim.max_users) + ") sequences"));
    }
    sequences.push_back(std::move(seq));
    ++rep.lines_kept;
  }

  if (sequences.empty()) {
    return fail(Status::InvalidArgument("no sequences in " + path));
  }

  rep.max_item_id_seen = max_item;
  int64_t num_items = max_item;
  if (repair && options.renumber_sparse_vocab) {
    std::vector<int64_t> ids;
    for (const auto& seq : sequences) {
      ids.insert(ids.end(), seq.begin(), seq.end());
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    if (static_cast<int64_t>(ids.size()) < max_item) {
      // Order-preserving dense renumbering: the k-th smallest kept id
      // becomes k. Models allocate embeddings for ids that exist instead
      // of for every gap below the maximum.
      std::unordered_map<int64_t, int64_t> remap;
      remap.reserve(ids.size());
      for (size_t i = 0; i < ids.size(); ++i) {
        remap[ids[i]] = static_cast<int64_t>(i) + 1;
      }
      for (auto& seq : sequences) {
        for (int64_t& v : seq) v = remap[v];
      }
      num_items = static_cast<int64_t>(ids.size());
      rep.vocab_renumbered = true;
    }
  }
  rep.num_items = num_items;
  PublishMetrics(rep, options.metrics, /*ok=*/true);
  return InteractionDataset(name, std::move(sequences), num_items);
}

Status WriteQuarantineJsonl(const QuarantineReport& report,
                            const std::string& path, io::Env* env) {
  if (env == nullptr) env = io::Env::Default();
  const std::string payload = report.ToJsonl();
  return io::AtomicWriteFile(env, path, payload);
}

}  // namespace data
}  // namespace slime
