// Regenerates Fig. 7: visualisation of the learned slide filters. Trains
// SLIME4Rec on beauty-sim with slide mode 4, alpha = 0.1 and L = 4 (so
// beta = 0.25, the paper's setting), then renders per-layer amplitude
// heatmaps of the dynamic filters (a), the static filters (b), and the
// frequency differential showing SFS recapturing bins DFS misses (c).
// Also writes CSV files next to the binary for external plotting.

#include <cstdio>
#include <fstream>
#include <string>

#include "bench_util/experiment.h"
#include "fft/fft.h"

namespace slime {
namespace bench {
namespace {

/// Mean amplitude per frequency bin (averaged over the hidden dim).
std::vector<double> BinMeans(const Tensor& amp) {
  const int64_t m = amp.size(0);
  const int64_t d = amp.size(1);
  std::vector<double> out(m, 0.0);
  for (int64_t k = 0; k < m; ++k) {
    for (int64_t j = 0; j < d; ++j) out[k] += amp.At({k, j});
    out[k] /= static_cast<double>(d);
  }
  return out;
}

void AsciiBar(const std::vector<double>& values, double vmax) {
  static const char* kShades = " .:-=+*#%@";
  std::printf("  |");
  for (double v : values) {
    const int level =
        vmax > 0 ? std::min<int>(9, static_cast<int>(10.0 * v / vmax)) : 0;
    std::printf("%c", kShades[level]);
  }
  std::printf("|  (low freq %s high freq)\n", "->");
}

void DumpCsv(const std::string& path,
             const std::vector<std::vector<double>>& rows) {
  std::ofstream out(path);
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ",";
      out << row[i];
    }
    out << "\n";
  }
  std::printf("wrote %s\n", path.c_str());
}

void Run() {
  std::printf("Fig. 7 reproduction: learned slide filter amplitudes "
              "(beauty-sim, mode 4, alpha=0.1, L=4 => beta=0.25)\n\n");
  const data::SplitDataset split =
      BuildSplit(data::BeautySimConfig(BenchDataScale(0.3)));
  models::ModelConfig base = DefaultModelConfig(split);
  base.num_layers = 4;
  core::FilterMixerOptions m = DefaultMixerOptions(split.name());
  m.alpha = 0.1;  // < beta = 0.25: DFS leaves gaps, SFS recaptures them
  core::Slime4Rec model(MakeSlimeConfig(base, m));
  train::Trainer trainer(BenchTrainConfig());
  const train::TrainResult r = trainer.Fit(&model, split).value();
  std::printf("trained to test %s\n\n",
              ("HR@5 " + Fmt4(r.test.hr5) + ", NDCG@5 " + Fmt4(r.test.ndcg5))
                  .c_str());

  const int64_t bins = fft::RfftBins(base.max_len);
  std::vector<std::vector<double>> dyn_rows;
  std::vector<std::vector<double>> sta_rows;
  std::vector<std::vector<double>> diff_rows;
  double vmax = 0.0;
  for (const auto& block : model.blocks()) {
    const auto dyn = BinMeans(block->mixer().MaskedDynamicAmplitude());
    const auto sta = BinMeans(block->mixer().MaskedStaticAmplitude());
    for (double v : dyn) vmax = std::max(vmax, v);
    for (double v : sta) vmax = std::max(vmax, v);
    std::vector<double> diff(bins);
    for (int64_t k = 0; k < bins; ++k) diff[k] = sta[k] - dyn[k];
    dyn_rows.push_back(dyn);
    sta_rows.push_back(sta);
    diff_rows.push_back(diff);
  }
  std::printf("(a) dynamic filters |W_D| per layer (window ~alpha*M = %lld "
              "bins, sliding high->low):\n",
              static_cast<long long>(0.1 * bins + 0.5));
  for (size_t l = 0; l < dyn_rows.size(); ++l) {
    std::printf("layer %zu", l);
    AsciiBar(dyn_rows[l], vmax);
  }
  std::printf("\n(b) static filters |W_S| per layer (exact 1/L split):\n");
  for (size_t l = 0; l < sta_rows.size(); ++l) {
    std::printf("layer %zu", l);
    AsciiBar(sta_rows[l], vmax);
  }
  std::printf("\n(c) frequency differential (static - dynamic amplitude, "
              "> 0 where SFS recaptures missed bins):\n");
  for (size_t l = 0; l < diff_rows.size(); ++l) {
    std::vector<double> pos(bins);
    for (int64_t k = 0; k < bins; ++k) {
      pos[k] = std::max(0.0, diff_rows[l][k]);
    }
    std::printf("layer %zu", l);
    AsciiBar(pos, vmax);
  }
  // Coverage check: DFS windows cover < M bins (alpha < 1/L), SFS exactly
  // partitions all M bins.
  int64_t dfs_covered = 0;
  int64_t sfs_covered = 0;
  for (int64_t k = 0; k < bins; ++k) {
    bool in_dfs = false;
    bool in_sfs = false;
    for (const auto& block : model.blocks()) {
      in_dfs = in_dfs || block->mixer().dynamic_window().Contains(k);
      in_sfs = in_sfs || block->mixer().static_window().Contains(k);
    }
    dfs_covered += in_dfs;
    sfs_covered += in_sfs;
  }
  std::printf("\ncoverage: DFS windows cover %lld/%lld bins (gaps exist, as "
              "alpha < 1/L); SFS covers %lld/%lld [%s]\n",
              static_cast<long long>(dfs_covered),
              static_cast<long long>(bins),
              static_cast<long long>(sfs_covered),
              static_cast<long long>(bins),
              (dfs_covered < bins && sfs_covered == bins) ? "OK" : "MISS");
  DumpCsv("fig7_dynamic_amplitude.csv", dyn_rows);
  DumpCsv("fig7_static_amplitude.csv", sta_rows);
  DumpCsv("fig7_frequency_differential.csv", diff_rows);
}

}  // namespace
}  // namespace bench
}  // namespace slime

int main() {
  slime::bench::Run();
  return 0;
}
