// Design-choice ablations DESIGN.md calls out for knobs the paper does not
// report values for: the DFS/SFS mixing coefficient gamma of Eq. 26 and
// the contrastive strength lambda of Eq. 36. One dataset, quick sweeps.

#include <cstdio>

#include "bench_util/experiment.h"
#include "bench_util/table_printer.h"
#include "common/string_util.h"

namespace slime {
namespace bench {
namespace {

void Run() {
  const double scale = BenchDataScale(0.2);
  std::printf("Design-choice ablations (beauty-sim, scale %.2f)\n\n", scale);
  const data::SplitDataset split =
      BuildSplit(data::BeautySimConfig(scale));
  const train::TrainConfig tc = BenchTrainConfig();
  const models::ModelConfig base = DefaultModelConfig(split);

  std::printf("gamma: Eq. 26 mix between the dynamic and static branches\n"
              "(0 = DFS only, 1 = SFS only at the spectrum-mix level; both\n"
              "filters stay in the model)\n");
  TablePrinter gamma_table({"gamma", "HR@5", "NDCG@5", "NDCG@10"});
  for (const double gamma : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    core::FilterMixerOptions m = DefaultMixerOptions(split.name());
    m.gamma = gamma;
    const ExperimentResult r =
        RunSlimeVariant(MakeSlimeConfig(base, m), split, tc);
    gamma_table.AddRow({FormatFloat(gamma, 2), Fmt4(r.test.hr5),
                        Fmt4(r.test.ndcg5), Fmt4(r.test.ndcg10)});
    std::fflush(stdout);
  }
  gamma_table.Print();

  std::printf("\nlambda: Eq. 36 contrastive strength (0 = w/oC)\n");
  TablePrinter lambda_table({"lambda", "HR@5", "NDCG@5", "NDCG@10"});
  for (const float lambda : {0.0f, 0.05f, 0.1f, 0.2f, 0.4f}) {
    models::ModelConfig mc = base;
    mc.cl_weight = lambda;
    const core::FilterMixerOptions m = DefaultMixerOptions(split.name());
    const ExperimentResult r = RunSlimeVariant(
        MakeSlimeConfig(mc, m, /*use_contrastive=*/lambda > 0.0f), split,
        tc);
    lambda_table.AddRow({FormatFloat(lambda, 2), Fmt4(r.test.hr5),
                         Fmt4(r.test.ndcg5), Fmt4(r.test.ndcg10)});
    std::fflush(stdout);
  }
  lambda_table.Print();
  std::printf("\nExpected: an interior gamma works best (both branches\n"
              "contribute, Fig. 3's w/oD and w/oS both degrade), and a\n"
              "small positive lambda beats 0 while large lambda drowns the\n"
              "recommendation loss.\n");
}

}  // namespace
}  // namespace bench
}  // namespace slime

int main() {
  slime::bench::Run();
  return 0;
}
