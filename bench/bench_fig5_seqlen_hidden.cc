// Regenerates Fig. 5: (a, b) HR@5 with different dynamic filter size
// ratios alpha under different maximum sequence lengths N in {25, 50, 75,
// 100} (Beauty and ML-1M); (c, d) performance across hidden sizes d in
// {16 .. 256}. Odd N values exercise the Bluestein FFT path end-to-end.

#include <cstdio>

#include "bench_util/experiment.h"
#include "bench_util/paper_values.h"
#include "bench_util/table_printer.h"

namespace slime {
namespace bench {
namespace {

void RunSeqLen(const data::SyntheticConfig& preset) {
  const data::SplitDataset split = BuildSplit(preset);
  const std::string name = PaperDatasetName(split.name());
  std::printf("\n=== Fig. 5(a/b): max item list length sweep on %s ===\n",
              name.c_str());
  const train::TrainConfig tc = BenchTrainConfig();
  TablePrinter table({"N", "alpha=0.2", "alpha=0.6", "alpha=1.0"});
  for (const int64_t n : {25, 50, 75, 100}) {
    std::vector<std::string> cells = {std::to_string(n)};
    for (const double alpha : {0.2, 0.6, 1.0}) {
      models::ModelConfig base = DefaultModelConfig(split);
      base.max_len = n;
      core::FilterMixerOptions m = DefaultMixerOptions(split.name());
      m.alpha = alpha;
      const ExperimentResult r =
          RunSlimeVariant(MakeSlimeConfig(base, m), split, tc);
      cells.push_back(Fmt4(r.test.hr5));
      std::fflush(stdout);
    }
    table.AddRow(cells);
  }
  table.Print();
}

void RunHidden(const data::SyntheticConfig& preset) {
  const data::SplitDataset split = BuildSplit(preset);
  const std::string name = PaperDatasetName(split.name());
  std::printf("\n=== Fig. 5(c/d): hidden size sweep on %s ===\n",
              name.c_str());
  const train::TrainConfig tc = BenchTrainConfig();
  TablePrinter table({"d", "HR@5", "NDCG@5", "params"});
  double best_hr = -1.0;
  int64_t best_d = 0;
  // d = 256 (the paper's upper end) is omitted at bench scale: the
  // d^2 FFN cost dominates wall-clock without changing the saturation
  // story. Pass SLIME_BENCH_SCALE and edit locally to sweep it.
  for (const int64_t d : {16, 32, 64, 128}) {
    models::ModelConfig base = DefaultModelConfig(split);
    base.hidden_dim = d;
    const core::FilterMixerOptions m = DefaultMixerOptions(split.name());
    const ExperimentResult r =
        RunSlimeVariant(MakeSlimeConfig(base, m), split, tc);
    table.AddRow({std::to_string(d), Fmt4(r.test.hr5), Fmt4(r.test.ndcg5),
                  std::to_string(r.param_count)});
    std::fflush(stdout);
    if (r.test.hr5 > best_hr) {
      best_hr = r.test.hr5;
      best_d = d;
    }
  }
  table.Print();
  std::printf("best d on %s: %lld (paper: saturates around 64, degrades "
              "when too large)\n",
              name.c_str(), static_cast<long long>(best_d));
}

void Run() {
  std::printf("Fig. 5 reproduction: sequence length and hidden size sweeps "
              "(scale %.2f)\n",
              BenchDataScale(0.15));
  RunSeqLen(data::BeautySimConfig(BenchDataScale(0.15)));
  RunSeqLen(data::Ml1mSimConfig(BenchDataScale(0.15)));
  RunHidden(data::BeautySimConfig(BenchDataScale(0.15)));
  RunHidden(data::Ml1mSimConfig(BenchDataScale(0.15)));
}

}  // namespace
}  // namespace bench
}  // namespace slime

int main() {
  slime::bench::Run();
  return 0;
}
