// Kernel/dispatch-layer benchmark: measures GFLOP/s and thread scaling of
// the compute kernels plus end-to-end train/serve phases, and verifies that
// every thread count produces bit-identical results (CRC32 over the output
// buffers). Emits BENCH_kernels.json.
//
// Usage: bench_kernels [--quick] [--out FILE]
//   --quick          shrink problem sizes (CI smoke run)
//   --out FILE       output path (default BENCH_kernels.json)
// SLIME_BENCH_SCALE scales the synthetic dataset (default 0.25).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <complex>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "common/crc32.h"
#include "common/random.h"
#include "compute/backend.h"
#include "compute/kernels.h"
#include "compute/thread_pool.h"
#include "data/synthetic.h"
#include "fft/fft.h"
#include "fft/spectral_ops.h"
#include "models/model_factory.h"
#include "serving/recommendation_service.h"
#include "train/trainer.h"

namespace slime {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Measurement {
  int threads = 0;
  double seconds = 0.0;
  double gflops = 0.0;  // 0 when not meaningful
  uint32_t crc = 0;
};

/// Best-of-`reps` wall time for `fn`; returns seconds.
template <typename Fn>
double BestOf(int reps, Fn fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = NowSeconds();
    fn();
    best = std::min(best, NowSeconds() - t0);
  }
  return best;
}

std::vector<Measurement> BenchMatMul(int64_t n, int reps,
                                     const std::vector<int>& thread_counts) {
  Rng rng(1);
  std::vector<float> a(n * n), b(n * n), c(n * n);
  for (auto& x : a) x = rng.UniformFloat() - 0.5f;
  for (auto& x : b) x = rng.UniformFloat() - 0.5f;
  std::vector<Measurement> out;
  const double flops = 2.0 * n * n * n;
  for (int threads : thread_counts) {
    compute::ComputeContext ctx(threads);
    const double secs = BestOf(reps, [&] {
      std::memset(c.data(), 0, c.size() * sizeof(float));
      compute::Dispatch().matmul(a.data(), b.data(), c.data(), n, n, n);
    });
    out.push_back({threads, secs, flops / secs / 1e9,
                   Crc32(c.data(), c.size() * sizeof(float))});
  }
  return out;
}

std::vector<Measurement> BenchComplexMul(
    int64_t repeats, int64_t block, int reps,
    const std::vector<int>& thread_counts) {
  Rng rng(2);
  const int64_t total = repeats * block;
  std::vector<float> ar(total), ai(total), br(block), bi(block), re(total),
      im(total);
  for (auto* v : {&ar, &ai, &br, &bi}) {
    for (auto& x : *v) x = rng.UniformFloat() - 0.5f;
  }
  std::vector<Measurement> out;
  const double flops = 6.0 * total;
  for (int threads : thread_counts) {
    compute::ComputeContext ctx(threads);
    const double secs = BestOf(reps, [&] {
      compute::Dispatch().complex_mul(ar.data(), ai.data(), br.data(),
                                      bi.data(), re.data(), im.data(),
                                      repeats, block);
    });
    uint32_t crc = Crc32(re.data(), re.size() * sizeof(float));
    crc = ExtendCrc32(crc, im.data(), im.size() * sizeof(float));
    out.push_back({threads, secs, flops / secs / 1e9, crc});
  }
  return out;
}

std::vector<Measurement> BenchAxpy(int64_t n, int reps,
                                   const std::vector<int>& thread_counts) {
  Rng rng(3);
  std::vector<float> a(n), out(n);
  for (auto& x : a) x = rng.UniformFloat() - 0.5f;
  std::vector<Measurement> result;
  const double flops = 2.0 * n;
  for (int threads : thread_counts) {
    compute::ComputeContext ctx(threads);
    std::fill(out.begin(), out.end(), 1.0f);
    const double secs = BestOf(reps, [&] {
      compute::Dispatch().axpy(out.data(), a.data(), 0.5f, n);
    });
    result.push_back({threads, secs, flops / secs / 1e9,
                      Crc32(out.data(), out.size() * sizeof(float))});
  }
  return result;
}

std::vector<Measurement> BenchAdamStep(
    int64_t n, int reps, const std::vector<int>& thread_counts) {
  Rng rng(4);
  std::vector<float> g(n);
  for (auto& x : g) x = rng.UniformFloat() - 0.5f;
  compute::AdamStepParams p;
  p.bias_corr1 = 0.5f;
  p.bias_corr2 = 0.1f;
  std::vector<Measurement> result;
  const double flops = 11.0 * n;  // rough per-element op count
  for (int threads : thread_counts) {
    compute::ComputeContext ctx(threads);
    std::vector<float> w(n, 0.1f), m(n, 0.0f), v(n, 0.0f);
    const double secs = BestOf(reps, [&] {
      compute::Dispatch().adam_step(w.data(), m.data(), v.data(), g.data(), n,
                                    p);
    });
    result.push_back({threads, secs, flops / secs / 1e9,
                      Crc32(w.data(), w.size() * sizeof(float))});
  }
  return result;
}

/// Benchmarks the filter-mixer transform hot loop at the plan level: the
/// packed `VerticalRfftPlan` vs what the ops previously did per batch item
/// (stage a full (n, d) complex block, run `VerticalFftPlan`, copy the half
/// spectrum out). Separate arms per path: cross-path CRCs legitimately
/// differ by rounding, while within an arm every thread count must be
/// bit-identical.
std::vector<Measurement> BenchRfftPlan(int64_t n, int64_t b, int64_t d,
                                       bool packed, bool inverse, int reps,
                                       const std::vector<int>& thread_counts) {
  const int64_t m = fft::RfftBins(n);
  Rng rng(6);
  std::vector<float> x(b * n * d);
  for (auto& v : x) v = rng.UniformFloat() - 0.5f;
  std::vector<float> re(b * m * d), im(b * m * d), back(b * n * d);
  if (inverse) {
    // Realistic half-spectrum input: the forward of x.
    const fft::VerticalRfftPlan& plan = fft::GetVerticalRfftPlan(n);
    for (int64_t bi = 0; bi < b; ++bi) {
      plan.Forward(x.data() + bi * n * d, d, re.data() + bi * m * d,
                   im.data() + bi * m * d);
    }
  }
  const float inv_n = 1.0f / static_cast<float>(n);
  std::vector<Measurement> out;
  // Nominal full-complex transform work, identical for both paths so the
  // packed arm's higher "gflops" directly reads as its effective speedup.
  const double flops =
      5.0 * n * std::max(1.0, std::log2(static_cast<double>(n))) * b * d;
  for (int threads : thread_counts) {
    compute::ComputeContext ctx(threads);
    const double secs = BestOf(reps, [&] {
      compute::ParallelFor(0, b, 1, [&](int64_t lo, int64_t hi) {
        static thread_local std::vector<float> sre, sim;
        if (static_cast<int64_t>(sre.size()) < n * d) {
          sre.resize(n * d);
          sim.resize(n * d);
        }
        for (int64_t bi = lo; bi < hi; ++bi) {
          if (packed) {
            const fft::VerticalRfftPlan& plan = fft::GetVerticalRfftPlan(n);
            if (inverse) {
              plan.Inverse(re.data() + bi * m * d, im.data() + bi * m * d, d,
                           back.data() + bi * n * d, inv_n);
            } else {
              plan.Forward(x.data() + bi * n * d, d, re.data() + bi * m * d,
                           im.data() + bi * m * d);
            }
          } else {
            const fft::VerticalFftPlan& plan = fft::GetVerticalPlan(n);
            if (inverse) {
              std::copy(re.data() + bi * m * d, re.data() + (bi + 1) * m * d,
                        sre.data());
              std::copy(im.data() + bi * m * d, im.data() + (bi + 1) * m * d,
                        sim.data());
              for (int64_t k = 1; k < (n + 1) / 2; ++k) {
                for (int64_t f = 0; f < d; ++f) {
                  sre[(n - k) * d + f] = sre[k * d + f];
                  sim[(n - k) * d + f] = -sim[k * d + f];
                }
              }
              plan.Transform(sre.data(), sim.data(), d, /*inverse=*/true);
              float* dst = back.data() + bi * n * d;
              for (int64_t i = 0; i < n * d; ++i) dst[i] = sre[i] * inv_n;
            } else {
              std::copy(x.data() + bi * n * d, x.data() + (bi + 1) * n * d,
                        sre.data());
              std::fill(sim.begin(), sim.begin() + n * d, 0.0f);
              plan.Transform(sre.data(), sim.data(), d, /*inverse=*/false);
              std::copy(sre.data(), sre.data() + m * d,
                        re.data() + bi * m * d);
              std::copy(sim.data(), sim.data() + m * d,
                        im.data() + bi * m * d);
            }
          }
        }
      });
    });
    uint32_t crc;
    if (inverse) {
      crc = Crc32(back.data(), back.size() * sizeof(float));
    } else {
      crc = Crc32(re.data(), re.size() * sizeof(float));
      crc = ExtendCrc32(crc, im.data(), im.size() * sizeof(float));
    }
    out.push_back({threads, secs, flops / secs / 1e9, crc});
  }
  return out;
}

/// The ISSUE 9 acceptance gates for the packed path, measured on this host:
/// max-abs error vs NaiveDft, gradcheck, and top-K ranking agreement
/// between the two paths on a trained model.
struct RfftGates {
  double max_abs_err = 0.0;
  bool gradcheck_ok = false;
  double ranking_agreement = 0.0;
};

RfftGates MeasureRfftGates(const data::SplitDataset& split) {
  RfftGates gates;
  // (a) Packed forward vs the O(n^2) double-precision NaiveDft oracle at
  // the two benched lengths.
  for (const int64_t n : {int64_t{64}, int64_t{200}}) {
    const int64_t d = 4;
    const int64_t m = fft::RfftBins(n);
    Rng rng(100 + n);
    std::vector<float> x(n * d);
    for (auto& v : x) v = rng.UniformFloat() - 0.5f;
    std::vector<float> re(m * d), im(m * d);
    fft::GetVerticalRfftPlan(n).Forward(x.data(), d, re.data(), im.data());
    for (int64_t f = 0; f < d; ++f) {
      std::vector<std::complex<double>> col(n);
      for (int64_t t = 0; t < n; ++t) col[t] = {x[t * d + f], 0.0};
      std::vector<std::complex<double>> naive;
      fft::NaiveDft(col, &naive, false);
      for (int64_t k = 0; k < m; ++k) {
        gates.max_abs_err =
            std::max({gates.max_abs_err,
                      std::abs(re[k * d + f] - naive[k].real()),
                      std::abs(im[k * d + f] - naive[k].imag())});
      }
    }
  }
  // (b) Gradcheck of the rfft->irfft composition on the packed path.
  {
    const fft::RfftPathGuard guard(fft::RfftPath::kPacked);
    Rng rng(7);
    autograd::Variable x =
        autograd::Param(Tensor::Randn({1, 12, 2}, &rng, 0.5f));
    const auto result = autograd::CheckGradients(
        [](const std::vector<autograd::Variable>& in) {
          Rng wrng(96);
          Tensor w = Tensor::Randn({1, 12, 2}, &wrng);
          return autograd::Sum(
              autograd::MulConst(fft::Irfft(fft::Rfft(in[0]), 12), w));
        },
        {x});
    gates.gradcheck_ok = result.ok;
  }
  // (c) Train one model, then serve the same batch under each path; the
  // two rankings must agree almost everywhere (ulp-level divergence only).
  {
    compute::ComputeContext ctx(4);
    models::ModelConfig c;
    c.num_items = split.num_items();
    c.num_users = split.num_users();
    c.max_len = 16;
    c.hidden_dim = 32;
    c.num_layers = 2;
    c.seed = 11;
    auto model = models::CreateModel("SLIME4Rec", c);
    train::TrainConfig t;
    t.max_epochs = 1;
    t.batch_size = 64;
    t.seed = 5;
    t.patience = 100;
    train::Trainer(t).Fit(model.get(), split).value();
    serving::RecommendationService service(model.get());
    serving::RecommendOptions options;
    options.top_k = 10;
    Rng rng(8);
    std::vector<std::vector<int64_t>> histories;
    for (int u = 0; u < 64; ++u) {
      std::vector<int64_t> h;
      const int len = 4 + static_cast<int>(rng.Uniform(12));
      for (int i = 0; i < len; ++i)
        h.push_back(1 + static_cast<int64_t>(rng.Uniform(c.num_items)));
      histories.push_back(std::move(h));
    }
    std::vector<std::vector<serving::Recommendation>> packed, reference;
    {
      const fft::RfftPathGuard guard(fft::RfftPath::kPacked);
      packed = service.RecommendBatch(histories, options).value();
    }
    {
      const fft::RfftPathGuard guard(fft::RfftPath::kFullComplex);
      reference = service.RecommendBatch(histories, options).value();
    }
    int64_t overlap = 0, total = 0;
    for (size_t u = 0; u < packed.size(); ++u) {
      for (const auto& r : packed[u]) {
        ++total;
        for (const auto& o : reference[u]) {
          if (r.item == o.item) {
            ++overlap;
            break;
          }
        }
      }
    }
    gates.ranking_agreement =
        total > 0 ? static_cast<double>(overlap) / total : 0.0;
  }
  return gates;
}

data::SplitDataset BenchSplit(double scale) {
  data::SyntheticConfig config = data::BeautySimConfig(scale);
  config.seed = 4242;
  return data::SplitDataset(data::GenerateSynthetic(config), 2);
}

std::vector<Measurement> BenchTrainEpoch(
    const data::SplitDataset& split, const std::vector<int>& thread_counts) {
  std::vector<Measurement> out;
  for (int threads : thread_counts) {
    compute::ComputeContext ctx(threads);
    models::ModelConfig c;
    c.num_items = split.num_items();
    c.num_users = split.num_users();
    c.max_len = 16;
    c.hidden_dim = 32;
    c.num_layers = 2;
    c.seed = 11;
    auto model = models::CreateModel("SLIME4Rec", c);
    train::TrainConfig t;
    t.max_epochs = 1;
    t.batch_size = 64;
    t.seed = 5;
    t.patience = 100;
    train::Trainer trainer(t);
    const double t0 = NowSeconds();
    const train::TrainResult result = trainer.Fit(model.get(), split).value();
    const double secs = NowSeconds() - t0;
    // The final loss doubles as the cross-thread-count identity witness.
    const double loss = result.final_train_loss;
    out.push_back(
        {threads, secs, 0.0, Crc32(&loss, sizeof(loss))});
  }
  return out;
}

std::vector<Measurement> BenchServeBatch(
    const data::SplitDataset& split, int reps,
    const std::vector<int>& thread_counts) {
  models::ModelConfig c;
  c.num_items = split.num_items();
  c.num_users = split.num_users();
  c.max_len = 16;
  c.hidden_dim = 32;
  c.num_layers = 2;
  c.seed = 11;
  auto model = models::CreateModel("SLIME4Rec", c);
  serving::RecommendationService service(model.get());
  serving::RecommendOptions options;
  options.top_k = 10;
  Rng rng(8);
  std::vector<std::vector<int64_t>> histories;
  for (int u = 0; u < 64; ++u) {
    std::vector<int64_t> h;
    const int len = 4 + static_cast<int>(rng.Uniform(12));
    for (int i = 0; i < len; ++i)
      h.push_back(1 + static_cast<int64_t>(rng.Uniform(c.num_items)));
    histories.push_back(std::move(h));
  }
  std::vector<Measurement> out;
  for (int threads : thread_counts) {
    compute::ComputeContext ctx(threads);
    std::vector<std::vector<serving::Recommendation>> recs;
    const double secs = BestOf(reps, [&] {
      recs = service.RecommendBatch(histories, options).value();
    });
    uint32_t crc = 0;
    for (const auto& user : recs) {
      for (const auto& r : user) {
        crc = ExtendCrc32(crc, &r.item, sizeof(r.item));
        crc = ExtendCrc32(crc, &r.score, sizeof(r.score));
      }
    }
    out.push_back({threads, secs, 0.0, crc});
  }
  return out;
}

void EmitSection(std::FILE* f, const char* name,
                 const std::vector<Measurement>& ms, bool last) {
  const double base = ms.empty() ? 0.0 : ms.front().seconds;
  bool identical = true;
  for (const auto& m : ms) identical = identical && m.crc == ms.front().crc;
  std::fprintf(f, "  \"%s\": {\n    \"bit_identical\": %s,\n    \"runs\": [\n",
               name, identical ? "true" : "false");
  for (size_t i = 0; i < ms.size(); ++i) {
    const auto& m = ms[i];
    std::fprintf(f,
                 "      {\"threads\": %d, \"seconds\": %.6f, "
                 "\"gflops\": %.3f, \"speedup_vs_1\": %.3f, "
                 "\"crc32\": %u}%s\n",
                 m.threads, m.seconds, m.gflops,
                 m.seconds > 0.0 ? base / m.seconds : 0.0, m.crc,
                 i + 1 < ms.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  }%s\n", last ? "" : ",");
}

int Main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_kernels.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_kernels [--quick] [--out FILE]\n");
      return 2;
    }
  }
  double scale = quick ? 0.05 : 0.25;
  if (const char* env = std::getenv("SLIME_BENCH_SCALE")) {
    scale = std::atof(env);
  }
  const int hw = compute::HardwareThreads();
  std::vector<int> thread_counts = {1, 2, 4};
  const int64_t mm_n = quick ? 128 : 512;
  const int reps = quick ? 2 : 3;
  const int64_t ew_n = quick ? (1 << 20) : (1 << 23);

  // Scalar-vs-simd arm per kernel: same shapes under every available
  // backend, scalar first so speedups read in order.
  std::vector<std::string> backends = compute::AvailableKernelBackends();
  std::reverse(backends.begin(), backends.end());

  std::fprintf(stderr,
               "bench_kernels: hardware_threads=%d scale=%g cpu=[%s]\n", hw,
               scale, compute::CpuFeatureString().c_str());
  struct Arm {
    std::string name;
    std::vector<Measurement> ms;
  };
  std::vector<Arm> arms;
  double matmul_1t_secs_scalar = 0.0;
  double matmul_1t_secs_simd = 0.0;
  for (const std::string& backend : backends) {
    compute::SetKernelBackend(backend).value();
    std::fprintf(stderr, "bench_kernels: backend=%s\n", backend.c_str());
    char section[64];
    std::snprintf(section, sizeof(section), "matmul_%ld_%s",
                  static_cast<long>(mm_n), backend.c_str());
    arms.push_back({section, BenchMatMul(mm_n, reps, thread_counts)});
    if (backend == "scalar") {
      matmul_1t_secs_scalar = arms.back().ms.front().seconds;
    } else if (backend == "simd") {
      matmul_1t_secs_simd = arms.back().ms.front().seconds;
    }
    arms.push_back({"complex_mul_" + backend,
                    BenchComplexMul(quick ? 64 : 512, quick ? 1024 : 8192,
                                    reps, thread_counts)});
    arms.push_back({"axpy_" + backend, BenchAxpy(ew_n, reps, thread_counts)});
    arms.push_back(
        {"adam_step_" + backend, BenchAdamStep(ew_n, reps, thread_counts)});
  }
  // Half-spectrum real-FFT arms: the packed fast path vs the full-complex
  // reference on the differentiable ops, at a pow2 and a Bluestein length
  // bracketing the paper's sequence scales. The paths are separate arms
  // because their CRCs legitimately differ by rounding; each arm is still
  // held to within-arm bit-identity across thread counts.
  const int64_t fft_b = quick ? 16 : 64;
  const int64_t fft_d = quick ? 16 : 64;
  double rfft_speedup_64 = 0.0;
  double rfft_speedup_200 = 0.0;
  for (const int64_t fn : {int64_t{64}, int64_t{200}}) {
    std::fprintf(stderr, "bench_kernels: rfft n=%ld\n",
                 static_cast<long>(fn));
    const auto cplx = BenchRfftPlan(fn, fft_b, fft_d, /*packed=*/false,
                                    /*inverse=*/false, reps, thread_counts);
    const auto packed = BenchRfftPlan(fn, fft_b, fft_d, /*packed=*/true,
                                      /*inverse=*/false, reps, thread_counts);
    const std::string sn = std::to_string(fn);
    arms.push_back({"rfft_" + sn + "_complex", cplx});
    arms.push_back({"rfft_" + sn + "_packed", packed});
    (fn == 64 ? rfft_speedup_64 : rfft_speedup_200) =
        cplx.front().seconds / packed.front().seconds;
    arms.push_back({"irfft_" + sn + "_complex",
                    BenchRfftPlan(fn, fft_b, fft_d, /*packed=*/false,
                                  /*inverse=*/true, reps, thread_counts)});
    arms.push_back({"irfft_" + sn + "_packed",
                    BenchRfftPlan(fn, fft_b, fft_d, /*packed=*/true,
                                  /*inverse=*/true, reps, thread_counts)});
  }

  // Train/serve phases run on the preferred backend for this host (the last
  // one benched, i.e. what `auto` resolves to).
  const std::string active = compute::ActiveKernelBackend();
  const data::SplitDataset split = BenchSplit(scale);
  const RfftGates rfft_gates = MeasureRfftGates(split);
  arms.push_back(
      {"train_epoch_beauty_sim", BenchTrainEpoch(split, thread_counts)});
  arms.push_back(
      {"serve_batch_64", BenchServeBatch(split, quick ? 1 : 2, thread_counts)});
  compute::SetKernelBackend("scalar").value();

  const double simd_speedup =
      matmul_1t_secs_simd > 0.0 ? matmul_1t_secs_scalar / matmul_1t_secs_simd
                                : 0.0;
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"host\": {\"hardware_threads\": %d,\n", hw);
  std::fprintf(f, "    \"cpu_features\": \"%s\",\n",
               compute::CpuFeatureString().c_str());
  std::fprintf(f, "    \"simd_compiled\": %s,\n",
               compute::SimdBackendCompiled() ? "true" : "false");
  std::fprintf(f, "    \"backends\": [");
  for (size_t i = 0; i < backends.size(); ++i) {
    std::fprintf(f, "\"%s\"%s", backends[i].c_str(),
                 i + 1 < backends.size() ? ", " : "");
  }
  std::fprintf(f, "],\n");
  std::fprintf(f, "    \"train_serve_backend\": \"%s\",\n", active.c_str());
  std::fprintf(f, "    \"matmul_simd_speedup_1t\": %.3f,\n", simd_speedup);
  std::fprintf(f, "    \"rfft_packed_speedup_1t_n64\": %.3f,\n",
               rfft_speedup_64);
  std::fprintf(f, "    \"rfft_packed_speedup_1t_n200\": %.3f,\n",
               rfft_speedup_200);
  std::fprintf(f, "    \"rfft_max_abs_err_vs_naive\": %.3g,\n",
               rfft_gates.max_abs_err);
  std::fprintf(f, "    \"rfft_gradcheck_ok\": %s,\n",
               rfft_gates.gradcheck_ok ? "true" : "false");
  std::fprintf(f, "    \"rfft_ranking_agreement\": %.4f,\n",
               rfft_gates.ranking_agreement);
  std::fprintf(f,
               "    \"note\": \"speedups are bounded by physical cores; on a "
               "1-core host all thread counts serialise\"},\n");
  for (size_t i = 0; i < arms.size(); ++i) {
    EmitSection(f, arms[i].name.c_str(), arms[i].ms, i + 1 == arms.size());
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s (matmul simd speedup at 1 thread: %.2fx)\n",
               out_path.c_str(), simd_speedup);

  // Exit nonzero if any arm broke within-backend bit-identity, so CI fails
  // loudly. Cross-backend CRCs are expected to differ (FMA contraction);
  // their equivalence is gated by gradcheck/ranking tests instead.
  for (const auto& arm : arms) {
    for (const auto& m : arm.ms) {
      if (m.crc != arm.ms.front().crc) return 1;
    }
  }
  // The packed-rfft correctness gates are deterministic and always enforced;
  // the speedup gate is timing-based, so only enforce it on full runs
  // (quick CI boxes are too noisy for a hard perf floor).
  if (rfft_gates.max_abs_err > 1e-4 || !rfft_gates.gradcheck_ok ||
      rfft_gates.ranking_agreement < 0.99) {
    std::fprintf(stderr, "rfft gates FAILED: err=%.3g gradcheck=%d agree=%.4f\n",
                 rfft_gates.max_abs_err, rfft_gates.gradcheck_ok ? 1 : 0,
                 rfft_gates.ranking_agreement);
    return 1;
  }
  if (!quick && (rfft_speedup_64 < 1.5 || rfft_speedup_200 < 1.5)) {
    std::fprintf(stderr, "rfft speedup gate FAILED: n64=%.2fx n200=%.2fx\n",
                 rfft_speedup_64, rfft_speedup_200);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace slime

int main(int argc, char** argv) { return slime::Main(argc, argv); }
