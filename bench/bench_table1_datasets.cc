// Regenerates Table I: statistics of the five datasets after preprocessing
// (5-core filtering), for our scaled-down synthetic counterparts, printed
// beside the paper's full-size numbers.

#include <cstdio>

#include "bench_util/experiment.h"
#include "bench_util/paper_values.h"
#include "bench_util/table_printer.h"
#include "common/string_util.h"

namespace slime {
namespace bench {
namespace {

void Run() {
  const double scale = BenchDataScale(1.0);
  std::printf("Table I reproduction: dataset statistics after 5-core "
              "preprocessing (scale %.2f)\n\n",
              scale);
  TablePrinter table({"Specs.", "Beauty", "Clothing", "Sports", "ML-1M",
                      "Yelp"});
  std::vector<data::DatasetStats> stats;
  for (const auto& preset : data::AllPresets(scale)) {
    stats.push_back(data::GenerateSynthetic(preset)
                        .FilterMinInteractions(5)
                        .Stats());
  }
  auto row = [&](const std::string& label, auto getter) {
    std::vector<std::string> cells = {label};
    for (const auto& s : stats) cells.push_back(getter(s));
    table.AddRow(cells);
  };
  row("# Users (sim)", [](const data::DatasetStats& s) {
    return std::to_string(s.num_users);
  });
  row("# Items (sim)", [](const data::DatasetStats& s) {
    return std::to_string(s.num_items);
  });
  row("# Avg.Length (sim)", [](const data::DatasetStats& s) {
    return FormatFloat(s.avg_length, 1);
  });
  row("# Actions (sim)", [](const data::DatasetStats& s) {
    return std::to_string(s.num_actions);
  });
  row("Sparsity (sim)", [](const data::DatasetStats& s) {
    return FormatFloat(100.0 * s.sparsity, 2) + "%";
  });
  table.AddSeparator();
  // Paper reference rows.
  const auto datasets = Table2Datasets();
  auto paper_row = [&](const std::string& label, auto getter) {
    std::vector<std::string> cells = {label};
    for (const auto& name : datasets) {
      const PaperDatasetStats* p = Table1Stats(name);
      cells.push_back(p != nullptr ? getter(*p) : "-");
    }
    table.AddRow(cells);
  };
  paper_row("# Users (paper)", [](const PaperDatasetStats& s) {
    return std::to_string(s.users);
  });
  paper_row("# Items (paper)", [](const PaperDatasetStats& s) {
    return std::to_string(s.items);
  });
  paper_row("# Avg.Length (paper)", [](const PaperDatasetStats& s) {
    return FormatFloat(s.avg_length, 1);
  });
  paper_row("# Actions (paper)", [](const PaperDatasetStats& s) {
    return std::to_string(s.actions);
  });
  paper_row("Sparsity (paper)", [](const PaperDatasetStats& s) {
    return FormatFloat(100.0 * s.sparsity, 2) + "%";
  });
  table.Print();
  std::printf(
      "\nShape checks (must mirror the paper): ML-1M is the dense outlier\n"
      "(longest sequences, lowest sparsity); Clothing has the shortest\n"
      "sequences and the highest sparsity of the Amazon trio.\n");
}

}  // namespace
}  // namespace bench
}  // namespace slime

int main() {
  slime::bench::Run();
  return 0;
}
