// Regenerates Fig. 3: the component ablation of SLIME4Rec — the full model
// vs SLIME4Rec_w/oC (no contrastive), SLIME4Rec_w/oD (no dynamic filter),
// SLIME4Rec_w/oS (no static filter) — against the strongest baseline
// DuoRec. The paper shows HR@5 / NDCG@5 bars on Beauty, Sports and Yelp.

#include <cstdio>

#include "bench_util/experiment.h"
#include "bench_util/paper_values.h"
#include "bench_util/table_printer.h"

namespace slime {
namespace bench {
namespace {

struct Variant {
  std::string label;
  bool use_contrastive;
  bool use_dynamic;
  bool use_static;
};

void RunDataset(const data::SyntheticConfig& preset) {
  const data::SplitDataset split = BuildSplit(preset);
  std::printf("\n=== %s ===\n", PaperDatasetName(split.name()).c_str());
  const models::ModelConfig base = DefaultModelConfig(split);
  const core::FilterMixerOptions mixer = DefaultMixerOptions(split.name());
  const train::TrainConfig tc = BenchTrainConfig();

  TablePrinter table({"Variant", "HR@5", "NDCG@5"});
  const std::vector<Variant> variants = {
      {"SLIME4Rec (full)", true, true, true},
      {"SLIME4Rec w/oC", false, true, true},
      {"SLIME4Rec w/oD", true, false, true},
      {"SLIME4Rec w/oS", true, true, false},
  };
  double full_ndcg = 0.0;
  double worst_variant_ndcg = 1e9;
  for (const auto& v : variants) {
    core::FilterMixerOptions m = mixer;
    m.use_dynamic = v.use_dynamic;
    m.use_static = v.use_static;
    const core::Slime4RecConfig config =
        MakeSlimeConfig(base, m, v.use_contrastive);
    const ExperimentResult r = RunSlimeVariant(config, split, tc);
    table.AddRow({v.label, Fmt4(r.test.hr5), Fmt4(r.test.ndcg5)});
    std::fflush(stdout);
    if (v.label == "SLIME4Rec (full)") {
      full_ndcg = r.test.ndcg5;
    } else {
      worst_variant_ndcg = std::min(worst_variant_ndcg, r.test.ndcg5);
    }
  }
  const ExperimentResult duo =
      RunModel("DuoRec", split, base, mixer, tc);
  table.AddSeparator();
  table.AddRow({"DuoRec (baseline)", Fmt4(duo.test.hr5),
                Fmt4(duo.test.ndcg5)});
  table.Print();
  std::printf(
      "shape check: full >= weakest ablated variant%s; full > DuoRec%s\n",
      full_ndcg >= worst_variant_ndcg ? " [OK]" : " [MISS]",
      full_ndcg > duo.test.ndcg5 ? " [OK]" : " [MISS]");
}

void Run() {
  std::printf("Fig. 3 reproduction: ablation of contrastive learning and "
              "the dynamic/static filters (scale %.2f)\n",
              BenchDataScale(0.25));
  // The paper's Fig. 3 plots Beauty, Sports and Yelp.
  RunDataset(data::BeautySimConfig(BenchDataScale(0.25)));
  RunDataset(data::SportsSimConfig(BenchDataScale(0.25)));
  RunDataset(data::YelpSimConfig(BenchDataScale(0.25)));
}

}  // namespace
}  // namespace bench
}  // namespace slime

int main() {
  slime::bench::Run();
  return 0;
}
