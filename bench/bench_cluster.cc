// Cluster-serving benchmark: drives a replicated ClusterServer with an
// open-loop load generator — Poisson arrivals at a fixed offered rate,
// Zipfian user popularity — and reports latency percentiles and loss rate
// per fleet shape. Arms:
//
//   shards1_healthy                single shard (degenerate cluster)
//   shardsN_healthy (N = 2, 4)     replicated fleet, all shards live
//   shardsN_killed  (N = 2, 4)     same fleet with one shard killed a third
//                                  of the way through the run; at R=2 the
//                                  router must absorb the kill by failover
//                                  with (near-)zero loss
//   repair_restore                 stateful 2-shard R=2 fleet: kill one
//                                  replica, stream appends past it (hinted
//                                  handoff queues every miss), then measure
//                                  the restore path — WAL reload + hint
//                                  replay + digest sweep — and require full
//                                  digest convergence with zero conflicts
//
// Open loop means arrivals are scheduled ahead of time and latency is
// measured from the *scheduled* arrival, not the issue time, so a stalled
// server cannot hide queueing delay by slowing the generator down
// (coordinated omission). Workers pull the next scheduled arrival, spin
// until its time, issue the request, and record completion - schedule.
//
// Emits BENCH_cluster.json. Usage: bench_cluster [--quick] [--out FILE]
// SLIME_BENCH_SCALE scales the synthetic dataset (default 0.25).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "common/random.h"
#include "compute/thread_pool.h"
#include "data/synthetic.h"
#include "io/env.h"
#include "models/model_factory.h"
#include "serving/fallback.h"
#include "serving/model_server.h"
#include "state/state_store.h"
#include "train/trainer.h"

namespace slime {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

data::SplitDataset BenchSplit(double scale) {
  data::SyntheticConfig config = data::BeautySimConfig(scale);
  config.seed = 4242;
  return data::SplitDataset(data::GenerateSynthetic(config), 2);
}

models::ModelConfig BenchModelConfig(const data::SplitDataset& split) {
  models::ModelConfig c;
  c.num_items = split.num_items();
  c.num_users = split.num_users();
  c.max_len = 16;
  c.hidden_dim = 32;
  c.num_layers = 2;
  c.seed = 11;
  return c;
}

struct Percentiles {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

Percentiles LatencyPercentiles(std::vector<double> ms) {
  Percentiles p;
  if (ms.empty()) return p;
  std::sort(ms.begin(), ms.end());
  const auto at = [&](double q) {
    return ms[static_cast<size_t>(q * (ms.size() - 1))];
  };
  p.p50 = at(0.50);
  p.p95 = at(0.95);
  p.p99 = at(0.99);
  return p;
}

/// Zipfian(s=1) sampler over [0, n): rank r is drawn with weight 1/(r+1),
/// the classic head-heavy user-popularity shape. Precomputed CDF + binary
/// search, seeded — the user stream is reproducible.
class ZipfSampler {
 public:
  explicit ZipfSampler(size_t n) : cdf_(n) {
    double total = 0.0;
    for (size_t r = 0; r < n; ++r) {
      total += 1.0 / static_cast<double>(r + 1);
      cdf_[r] = total;
    }
    for (double& c : cdf_) c /= total;
  }
  size_t Sample(Rng* rng) const {
    const double u = rng->UniformDouble();
    return static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

struct ScenarioResult {
  std::string name;
  int64_t offered = 0;
  int64_t served = 0;
  int64_t lost = 0;
  double seconds = 0.0;
  Percentiles latency;  // ms from scheduled arrival, successful responses
  cluster::ClusterStats stats;
  const char* health = "";
};

std::unique_ptr<cluster::ClusterServer> MakeFleet(
    const data::SplitDataset& split, int64_t shards,
    const std::string& state_dir = "") {
  cluster::ClusterOptions options;
  options.num_shards = shards;
  options.replication = 2;  // the ring clamps to the fleet size
  options.seed = 4242;
  if (!state_dir.empty()) {
    options.state_dir = state_dir;
    options.hinted_handoff = true;
    options.repair_on_restore = true;
  }
  // Generous per-request budget: this bench measures routing and failover
  // latency, not the degradation ladder (bench_serving covers that).
  options.default_deadline_nanos = 500 * serving::kNanosPerMilli;
  const models::ModelConfig config = BenchModelConfig(split);
  auto fleet = std::make_unique<cluster::ClusterServer>(
      options, [config]() { return models::CreateModel("SLIME4Rec", config); });
  fleet->set_fallback(serving::PopularityFallback::FromSplit(split));
  fleet->set_canary_requests(train::ExportCanarySet(split, 4));
  const Status started = fleet->Start();
  if (!started.ok()) {
    std::fprintf(stderr, "fleet start failed: %s\n",
                 started.ToString().c_str());
    std::exit(1);
  }
  return fleet;
}

/// Open-loop run: `requests` Poisson arrivals at `rate_rps`, users drawn
/// Zipfian. `kill_at` >= 0 kills that shard once a third of the arrivals
/// are due. Loss = any non-OK response (typed failures and deadline busts).
ScenarioResult DriveOpenLoop(const std::string& name,
                             cluster::ClusterServer* fleet,
                             const data::SplitDataset& split,
                             int64_t requests, double rate_rps,
                             int64_t kill_at, int client_threads) {
  Rng rng(0x09E41009ull);
  const ZipfSampler zipf(static_cast<size_t>(split.num_users()));

  // Pre-draw the whole arrival schedule and user stream so every worker
  // sees the same plan regardless of interleaving.
  std::vector<double> arrival(requests);
  std::vector<uint64_t> user(requests);
  double t = 0.0;
  for (int64_t i = 0; i < requests; ++i) {
    t += -std::log(1.0 - rng.UniformDouble()) / rate_rps;
    arrival[static_cast<size_t>(i)] = t;
    user[static_cast<size_t>(i)] =
        static_cast<uint64_t>(zipf.Sample(&rng));
  }

  std::vector<double> latency_ms(requests, -1.0);  // -1 => lost
  std::atomic<int64_t> next{0};
  const double t0 = NowSeconds();

  std::thread killer;
  if (kill_at >= 0) {
    const double kill_time = t0 + arrival[static_cast<size_t>(requests / 3)];
    killer = std::thread([fleet, kill_at, kill_time] {
      while (NowSeconds() < kill_time) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      fleet->KillShard(kill_at);
    });
  }

  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(client_threads));
  for (int c = 0; c < client_threads; ++c) {
    clients.emplace_back([&] {
      for (;;) {
        const int64_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= requests) break;
        const double due = t0 + arrival[static_cast<size_t>(i)];
        while (NowSeconds() < due) {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
        serving::ServeRequest request;
        request.history = split.TestInput(
            static_cast<int64_t>(user[static_cast<size_t>(i)]) %
            split.num_users());
        request.options.top_k = 10;
        const auto response =
            fleet->Serve(user[static_cast<size_t>(i)], request);
        if (response.ok()) {
          latency_ms[static_cast<size_t>(i)] = (NowSeconds() - due) * 1e3;
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  if (killer.joinable()) killer.join();

  ScenarioResult result;
  result.name = name;
  result.offered = requests;
  result.seconds = NowSeconds() - t0;
  std::vector<double> ok_latencies;
  ok_latencies.reserve(static_cast<size_t>(requests));
  for (const double l : latency_ms) {
    if (l >= 0.0) {
      ok_latencies.push_back(l);
      ++result.served;
    } else {
      ++result.lost;
    }
  }
  result.latency = LatencyPercentiles(std::move(ok_latencies));
  result.stats = fleet->stats();
  result.health = cluster::ToString(fleet->health());
  return result;
}

void EmitScenario(std::FILE* f, const ScenarioResult& r, bool last) {
  const double loss_rate =
      r.offered > 0 ? static_cast<double>(r.lost) / r.offered : 0.0;
  std::fprintf(
      f,
      "  \"%s\": {\n"
      "    \"offered\": %lld, \"served\": %lld, \"lost\": %lld,\n"
      "    \"loss_rate\": %.4f,\n"
      "    \"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f,\n"
      "    \"throughput_rps\": %.1f,\n"
      "    \"attempts\": %lld, \"retries\": %lld, \"failovers\": %lld,\n"
      "    \"hedges\": %lld, \"hedge_wins\": %lld, \"ejections\": %lld,\n"
      "    \"health\": \"%s\"\n"
      "  }%s\n",
      r.name.c_str(), static_cast<long long>(r.offered),
      static_cast<long long>(r.served), static_cast<long long>(r.lost),
      loss_rate, r.latency.p50, r.latency.p95, r.latency.p99,
      r.seconds > 0.0 ? r.served / r.seconds : 0.0,
      static_cast<long long>(r.stats.attempts),
      static_cast<long long>(r.stats.retries),
      static_cast<long long>(r.stats.failovers),
      static_cast<long long>(r.stats.hedges),
      static_cast<long long>(r.stats.hedge_wins),
      static_cast<long long>(r.stats.ejections), r.health,
      last ? "" : ",");
}

struct RepairResult {
  int64_t users = 0;
  int64_t missed_appends = 0;   // appends acked while one replica was dead
  double degraded_append_us = 0.0;  // mean ack latency with handoff armed
  double restore_ms = 0.0;  // WAL reload + hint replay + digest sweep
  int64_t diverged_segments = 0;  // after restore; the gate demands 0
  cluster::ClusterStats stats;
  bool restore_ok = false;
};

/// Anti-entropy arm: warm a stateful 2-shard R=2 fleet, kill shard 0,
/// stream `missed` appends past it (every one under-replicated, every one
/// hinted), then time RestoreShard — the full reload + hint-replay +
/// repair-sweep path — and verify per-segment digests converged.
RepairResult RunRepairScenario(const data::SplitDataset& split,
                               int64_t users, int64_t missed) {
  const std::string state_dir = "bench_cluster_state";
  io::Env* env = io::Env::Default();
  for (int s = 0; s < 2; ++s) {  // stale files would change recovery
    for (const char* file : {"/state.wal", "/state.snapshot",
                             "/state.wal.tmp", "/state.snapshot.tmp"}) {
      (void)env->RemoveFile(state_dir + "/shard_" + std::to_string(s) +
                            file);
    }
  }
  auto fleet = MakeFleet(split, /*shards=*/2, state_dir);

  RepairResult result;
  result.users = users;
  for (int64_t u = 0; u < users; ++u) {  // warm: both replicas see these
    const auto ack = fleet->AppendEvent(static_cast<uint64_t>(u),
                                        {u % 50 + 1, u % 50 + 2});
    if (!ack.ok()) return result;
  }
  fleet->KillShard(0);

  const double t0 = NowSeconds();
  for (int64_t i = 0; i < missed; ++i) {
    const auto ack = fleet->AppendEvent(static_cast<uint64_t>(i % users),
                                        {i % 100 + 3});
    if (!ack.ok()) return result;
    result.missed_appends += ack.value().replica_acks < 2 ? 1 : 0;
  }
  result.degraded_append_us =
      missed > 0 ? (NowSeconds() - t0) * 1e6 / missed : 0.0;

  const double t1 = NowSeconds();
  result.restore_ok = fleet->RestoreShard(0).ok();
  result.restore_ms = (NowSeconds() - t1) * 1e3;
  result.stats = fleet->stats();

  // Convergence: every segment's digest set must be byte-identical across
  // its replicas (same check the chaos "repair" stage enforces).
  const cluster::ShardRing& ring = fleet->ring();
  const auto segment_digests = [&](int64_t shard, int64_t segment) {
    const state::StateStore* store = fleet->shard_server(shard)->state_store();
    std::string bytes;
    if (store == nullptr) return bytes;
    for (const state::UserDigest& d : store->EnumerateDigests(
             [&ring, segment](uint64_t user_id) {
               return ring.SegmentOf(user_id) == segment;
             })) {
      bytes += std::to_string(d.user_id) + ":" +
               std::to_string(d.items_total) + ":" + std::to_string(d.crc) +
               ";";
    }
    return bytes;
  };
  for (int64_t seg = 0; seg < ring.num_segments(); ++seg) {
    const std::vector<int64_t>& reps = ring.Replicas(seg);
    const std::string first = segment_digests(reps[0], seg);
    for (size_t r = 1; r < reps.size(); ++r) {
      if (segment_digests(reps[r], seg) != first) {
        ++result.diverged_segments;
        break;
      }
    }
  }
  return result;
}

void EmitRepair(std::FILE* f, const RepairResult& r, bool last) {
  std::fprintf(
      f,
      "  \"repair_restore\": {\n"
      "    \"users\": %lld, \"missed_appends\": %lld,\n"
      "    \"degraded_append_us\": %.2f, \"restore_ms\": %.3f,\n"
      "    \"hints_queued\": %lld, \"hints_replayed\": %lld,\n"
      "    \"hints_dropped\": %lld, \"underreplicated_appends\": %lld,\n"
      "    \"repair_items_transferred\": %lld, \"repair_conflicts\": %lld,\n"
      "    \"diverged_segments\": %lld\n"
      "  }%s\n",
      static_cast<long long>(r.users),
      static_cast<long long>(r.missed_appends), r.degraded_append_us,
      r.restore_ms, static_cast<long long>(r.stats.hints_queued),
      static_cast<long long>(r.stats.hints_replayed),
      static_cast<long long>(r.stats.hints_dropped),
      static_cast<long long>(r.stats.underreplicated_appends),
      static_cast<long long>(r.stats.repair_items_transferred),
      static_cast<long long>(r.stats.repair_conflicts),
      static_cast<long long>(r.diverged_segments), last ? "" : ",");
}

int Main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_cluster.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_cluster [--quick] [--out FILE]\n");
      return 2;
    }
  }
  double scale = quick ? 0.05 : 0.25;
  if (const char* env = std::getenv("SLIME_BENCH_SCALE")) {
    scale = std::atof(env);
  }
  const int64_t requests = quick ? 96 : 512;
  const double rate_rps = quick ? 200.0 : 400.0;
  const int client_threads = 4;
  std::fprintf(stderr, "bench_cluster: scale=%g requests=%lld rate=%g rps\n",
               scale, static_cast<long long>(requests), rate_rps);

  const data::SplitDataset split = BenchSplit(scale);
  std::vector<ScenarioResult> results;
  for (const int64_t shards : {int64_t{1}, int64_t{2}, int64_t{4}}) {
    {
      auto fleet = MakeFleet(split, shards);
      results.push_back(DriveOpenLoop(
          "shards" + std::to_string(shards) + "_healthy", fleet.get(), split,
          requests, rate_rps, /*kill_at=*/-1, client_threads));
    }
    if (shards >= 2) {
      // Kill shard 0 a third of the way in: with R=2 every segment keeps a
      // live replica, so the router must absorb the kill via failover.
      auto fleet = MakeFleet(split, shards);
      results.push_back(DriveOpenLoop(
          "shards" + std::to_string(shards) + "_killed", fleet.get(), split,
          requests, rate_rps, /*kill_at=*/0, client_threads));
    }
  }

  const RepairResult repair = RunRepairScenario(
      split, /*users=*/quick ? 32 : 64, /*missed=*/quick ? 96 : 384);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"host\": {\"hardware_threads\": %d, \"quick\": %s,\n"
               "    \"requests\": %lld, \"rate_rps\": %.0f,\n"
               "    \"replication\": 2, \"client_threads\": %d},\n",
               compute::HardwareThreads(), quick ? "true" : "false",
               static_cast<long long>(requests), rate_rps, client_threads);
  for (size_t i = 0; i < results.size(); ++i) {
    EmitScenario(f, results[i], /*last=*/false);
  }
  EmitRepair(f, repair, /*last=*/true);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());

  // Gates, deliberately loose for CI timing noise: healthy fleets must not
  // lose requests, and a single-shard kill at R=2 must be absorbed (the
  // strict zero-loss assertion runs on the FakeClock in the chaos harness
  // and cluster tests, where scheduling jitter can't fake a loss).
  for (const ScenarioResult& r : results) {
    const double loss_rate =
        r.offered > 0 ? static_cast<double>(r.lost) / r.offered : 0.0;
    if (loss_rate > 0.01) {
      std::fprintf(stderr, "%s lost %.1f%% of requests\n", r.name.c_str(),
                   loss_rate * 100.0);
      return 1;
    }
    if (r.name.find("_killed") != std::string::npos &&
        r.stats.failovers == 0) {
      std::fprintf(stderr, "%s: kill was never routed around\n",
                   r.name.c_str());
      return 1;
    }
  }
  // Anti-entropy gates: the restore path must succeed, replay every hint
  // it queued, refuse to fabricate (zero conflicts), and leave every
  // segment's digest set byte-identical across replicas.
  if (!repair.restore_ok || repair.diverged_segments != 0 ||
      repair.stats.repair_conflicts != 0 ||
      repair.stats.hints_replayed != repair.stats.hints_queued ||
      repair.stats.hints_queued == 0) {
    std::fprintf(stderr,
                 "repair_restore: restore_ok=%d diverged=%lld conflicts=%lld "
                 "hints=%lld/%lld\n",
                 repair.restore_ok ? 1 : 0,
                 static_cast<long long>(repair.diverged_segments),
                 static_cast<long long>(repair.stats.repair_conflicts),
                 static_cast<long long>(repair.stats.hints_replayed),
                 static_cast<long long>(repair.stats.hints_queued));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace slime

int main(int argc, char** argv) { return slime::Main(argc, argv); }
