// Regenerates Table V: SLIME4Rec vs DuoRec at depths L in {2, 4, 8} on all
// five datasets. The paper's finding: SLIME4Rec beats DuoRec at every
// depth and can stack more layers without degrading, because each layer
// focuses on its own frequency band.

#include <cstdio>

#include "bench_util/experiment.h"
#include "common/string_util.h"
#include "bench_util/paper_values.h"
#include "bench_util/table_printer.h"

namespace slime {
namespace bench {
namespace {

void Run() {
  const double scale = BenchDataScale(0.15);
  std::printf("Table V reproduction: model depth L (scale %.2f)\n\n", scale);
  const train::TrainConfig tc = BenchTrainConfig();
  TablePrinter table({"L", "Dataset", "model", "HR@5", "NDCG@5", "HR@10",
                      "NDCG@10", "improv. NDCG@10 %"});
  int slime_wins = 0;
  int cells = 0;
  // Three representative datasets at bench scale (the paper runs all
  // five).
  const std::vector<data::SyntheticConfig> presets = {
      data::BeautySimConfig(scale), data::SportsSimConfig(scale),
      data::Ml1mSimConfig(scale)};
  for (const auto& preset : presets) {
    const data::SplitDataset split = BuildSplit(preset);
    const std::string name = PaperDatasetName(split.name());
    for (const int64_t layers : {2, 4, 8}) {
      models::ModelConfig base = DefaultModelConfig(split);
      base.num_layers = layers;
      const ExperimentResult duo = RunModel("DuoRec", split, base, {}, tc);
      core::FilterMixerOptions m = DefaultMixerOptions(split.name());
      const ExperimentResult ours =
          RunSlimeVariant(MakeSlimeConfig(base, m), split, tc);
      const double improv =
          duo.test.ndcg10 > 0
              ? 100.0 * (ours.test.ndcg10 / duo.test.ndcg10 - 1.0)
              : 0.0;
      table.AddRow({"L=" + std::to_string(layers), name, "DuoRec",
                    Fmt4(duo.test.hr5), Fmt4(duo.test.ndcg5),
                    Fmt4(duo.test.hr10), Fmt4(duo.test.ndcg10), "-"});
      table.AddRow({"L=" + std::to_string(layers), name, "Ours",
                    Fmt4(ours.test.hr5), Fmt4(ours.test.ndcg5),
                    Fmt4(ours.test.hr10), Fmt4(ours.test.ndcg10),
                    FormatFloat(improv, 1)});
      std::fflush(stdout);
      ++cells;
      if (ours.test.ndcg10 > duo.test.ndcg10) ++slime_wins;
    }
    table.AddSeparator();
  }
  table.Print();
  std::printf("\nSLIME4Rec > DuoRec (NDCG@10) in %d/%d (L, dataset) cells; "
              "the paper wins all 15.\n",
              slime_wins, cells);
}

}  // namespace
}  // namespace bench
}  // namespace slime

int main() {
  slime::bench::Run();
  return 0;
}
