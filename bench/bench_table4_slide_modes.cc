// Regenerates Table IV: the four slide-mode combinations of the frequency
// ramp structure (DFS direction x SFS direction), HR@5 / NDCG@5 on all five
// datasets, beside the paper's values. Mode 4 (<-, <-) should win.

#include <cstdio>
#include <map>

#include "bench_util/experiment.h"
#include "bench_util/paper_values.h"
#include "bench_util/table_printer.h"

namespace slime {
namespace bench {
namespace {

using core::SlideDirection;

struct Mode {
  int number;
  SlideDirection dfs;
  SlideDirection sfs;
};

void Run() {
  const double scale = BenchDataScale(0.2);
  std::printf("Table IV reproduction: slide modes of the frequency ramp "
              "structure (scale %.2f)\n\n",
              scale);
  const std::vector<Mode> modes = {
      {1, SlideDirection::kHighToLow, SlideDirection::kLowToHigh},
      {2, SlideDirection::kLowToHigh, SlideDirection::kHighToLow},
      {3, SlideDirection::kLowToHigh, SlideDirection::kLowToHigh},
      {4, SlideDirection::kHighToLow, SlideDirection::kHighToLow},
  };
  const train::TrainConfig tc = BenchTrainConfig();

  TablePrinter table({"Slide", "DFS", "SFS", "Dataset", "HR@5", "NDCG@5",
                      "paper HR@5", "paper NDCG@5"});
  std::map<int, double> mean_ndcg;
  for (const auto& preset : data::AllPresets(scale)) {
    const data::SplitDataset split = BuildSplit(preset);
    const std::string name = PaperDatasetName(split.name());
    for (const auto& mode : modes) {
      core::FilterMixerOptions m = DefaultMixerOptions(split.name());
      m.dynamic_direction = mode.dfs;
      m.static_direction = mode.sfs;
      // Four layers: with L = 2 the direction swap merely permutes the two
      // windows between two near-symmetric layers and all modes coincide;
      // the ramp direction only has meaning with a deeper stack (the
      // paper's Table IV settings use up to L = 8).
      models::ModelConfig base = DefaultModelConfig(split);
      base.num_layers = 4;
      const ExperimentResult r =
          RunSlimeVariant(MakeSlimeConfig(base, m), split, tc);
      const PaperModeMetrics* p = Table4Value(mode.number, name);
      table.AddRow({"Mode " + std::to_string(mode.number),
                    core::ToString(mode.dfs), core::ToString(mode.sfs), name,
                    Fmt4(r.test.hr5), Fmt4(r.test.ndcg5),
                    p ? Fmt4(p->hr5) : "-", p ? Fmt4(p->ndcg5) : "-"});
      std::fflush(stdout);
      mean_ndcg[mode.number] += r.test.ndcg5;
    }
    table.AddSeparator();
  }
  table.Print();
  std::printf("\nMean NDCG@5 across datasets:");
  for (const auto& [mode, total] : mean_ndcg) {
    std::printf("  mode %d: %s", mode, Fmt4(total / 5.0).c_str());
  }
  std::printf(
      "\nPaper's conclusion: mode 4 (high->low in both modules, matching\n"
      "bottom-layers-want-details) is best; mode 3 second; the conflicting\n"
      "modes 1 and 2 are suboptimal.\n");
}

}  // namespace
}  // namespace bench
}  // namespace slime

int main() {
  slime::bench::Run();
  return 0;
}
