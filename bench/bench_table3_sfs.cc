// Regenerates Table III: the SFS module's contribution when the dynamic
// filter is too small to cover the inter-step gaps (alpha < 1/L). Rows pair
// DFS-only against DFS+SFS for (L=2, a=0.3), (L=4, a=0.2), (L=8, a=0.1) —
// exactly the paper's grid, on all five datasets.

#include <cstdio>

#include "bench_util/experiment.h"
#include "bench_util/paper_values.h"
#include "bench_util/table_printer.h"

namespace slime {
namespace bench {
namespace {

struct GridRow {
  int64_t layers;
  double alpha;
};

void Run() {
  const double scale = BenchDataScale(0.15);
  std::printf("Table III reproduction: static frequency split when "
              "alpha < beta = 1/L (scale %.2f)\n\n",
              scale);
  const std::vector<GridRow> grid = {{2, 0.3}, {4, 0.2}, {8, 0.1}};
  const train::TrainConfig tc = BenchTrainConfig();

  TablePrinter table({"Layer", "DFS", "SFS", "Dataset", "HR@5", "NDCG@5"});
  int sfs_wins = 0;
  int cells = 0;
  // Three representative datasets at bench scale (the paper runs all five;
  // raise SLIME_BENCH_SCALE and extend the list to match).
  const std::vector<data::SyntheticConfig> presets = {
      data::BeautySimConfig(scale), data::SportsSimConfig(scale),
      data::Ml1mSimConfig(scale)};
  for (const auto& preset : presets) {
    const data::SplitDataset split = BuildSplit(preset);
    const std::string name = PaperDatasetName(split.name());
    for (const auto& row : grid) {
      models::ModelConfig base = DefaultModelConfig(split);
      base.num_layers = row.layers;
      double with_sfs_ndcg = 0.0;
      double without_sfs_ndcg = 0.0;
      for (const bool use_sfs : {false, true}) {
        core::FilterMixerOptions m = DefaultMixerOptions(split.name());
        m.alpha = row.alpha;
        m.use_static = use_sfs;
        const ExperimentResult r =
            RunSlimeVariant(MakeSlimeConfig(base, m), split, tc);
        table.AddRow({"L=" + std::to_string(row.layers),
                      "a=" + Fmt4(row.alpha).substr(0, 3),
                      use_sfs ? "b=1/L" : "X", name, Fmt4(r.test.hr5),
                      Fmt4(r.test.ndcg5)});
        std::fflush(stdout);
        (use_sfs ? with_sfs_ndcg : without_sfs_ndcg) = r.test.ndcg5;
      }
      ++cells;
      if (with_sfs_ndcg >= without_sfs_ndcg) ++sfs_wins;
    }
    table.AddSeparator();
  }
  table.Print();
  std::printf(
      "\nSFS >= DFS-only in %d/%d (L, dataset) cells. Paper's Table III: the\n"
      "static filter helps in every cell when alpha < 1/L (gaps exist\n"
      "between consecutive dynamic windows that SFS recaptures).\n",
      sfs_wins, cells);
}

}  // namespace
}  // namespace bench
}  // namespace slime

int main() {
  slime::bench::Run();
  return 0;
}
