// Companion analysis to Sec. IV-B: the paper evaluates by ranking over the
// *entire* item set, citing Krichene & Rendle (KDD'20) on the bias of
// sampled metrics. This bench reproduces that argument empirically: it
// trains two models, then reports full-ranking HR@10 next to
// sampled-negative HR@10 at several negative-set sizes. Sampled metrics
// inflate absolute numbers dramatically and compress the gap between
// models.

#include <cstdio>

#include "bench_util/experiment.h"
#include "bench_util/table_printer.h"
#include "metrics/sampled_ranking.h"
#include "models/model_factory.h"

namespace slime {
namespace bench {
namespace {

struct EvalRow {
  double full_hr10 = 0.0;
  std::vector<double> sampled_hr10;
};

EvalRow EvaluateBoth(models::SequentialRecommender* model,
                     const data::SplitDataset& split,
                     const std::vector<int64_t>& negative_counts) {
  model->SetTraining(false);
  metrics::RankingAccumulator full;
  Rng rng(1234);
  std::vector<metrics::SampledRankingAccumulator> sampled;
  sampled.reserve(negative_counts.size());
  for (int64_t n : negative_counts) sampled.emplace_back(n, &rng);
  for (const data::Batch& batch : data::MakeEvalBatches(
           split, /*test=*/true, 256, model->config().max_len)) {
    const Tensor scores = model->ScoreAll(batch);
    full.Add(scores, batch.targets);
    for (auto& acc : sampled) acc.Add(scores, batch.targets);
  }
  EvalRow row;
  row.full_hr10 = full.HrAt(10);
  for (const auto& acc : sampled) row.sampled_hr10.push_back(acc.HrAt(10));
  return row;
}

void Run() {
  const double scale = BenchDataScale(0.25);
  std::printf("Sampled-vs-full ranking metrics (the Sec. IV-B protocol "
              "argument), beauty-sim at scale %.2f\n\n",
              scale);
  const data::SplitDataset split =
      BuildSplit(data::BeautySimConfig(scale));
  const std::vector<int64_t> negative_counts = {50, 100, 200};
  const train::TrainConfig tc = BenchTrainConfig();

  TablePrinter table({"Model", "full HR@10", "HR@10 (50 neg)",
                      "HR@10 (100 neg)", "HR@10 (200 neg)"});
  std::vector<double> fulls;
  std::vector<double> at100;
  for (const std::string name : {"FMLP-Rec", "SLIME4Rec"}) {
    auto model = models::CreateModel(name, DefaultModelConfig(split),
                                     DefaultMixerOptions(split.name()));
    train::Trainer trainer(tc);
    trainer.Fit(model.get(), split).value();
    const EvalRow row = EvaluateBoth(model.get(), split, negative_counts);
    table.AddRow({name, Fmt4(row.full_hr10), Fmt4(row.sampled_hr10[0]),
                  Fmt4(row.sampled_hr10[1]), Fmt4(row.sampled_hr10[2])});
    fulls.push_back(row.full_hr10);
    at100.push_back(row.sampled_hr10[1]);
    std::fflush(stdout);
  }
  table.Print();
  const double full_gap =
      fulls[0] > 0 ? (fulls[1] / fulls[0] - 1.0) * 100.0 : 0.0;
  const double sampled_gap =
      at100[0] > 0 ? (at100[1] / at100[0] - 1.0) * 100.0 : 0.0;
  std::printf(
      "\nrelative SLIME4Rec-over-FMLP gap: %.1f%% under full ranking vs "
      "%.1f%% under 100 sampled negatives.\nSampled metrics inflate "
      "absolute values and compress model gaps — why the paper (and this "
      "repo) rank against the full item set.\n",
      full_gap, sampled_gap);
}

}  // namespace
}  // namespace bench
}  // namespace slime

int main() {
  slime::bench::Run();
  return 0;
}
