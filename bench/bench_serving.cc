// Serving-layer benchmark: drives a ModelServer through increasing
// pressure levels and reports latency percentiles (p50/p95/p99),
// throughput, and shed/degradation rates per level. Levels:
//
//   baseline      generous deadline, no rate limit: every request should
//                 be served at the full-model tier
//   deadline_*    per-request budgets derived from the baseline p50, so
//                 the degradation ladder engages progressively
//   overload      token-bucket rate below the offered rate: admission
//                 control sheds the excess
//   concurrent    multiple client threads against a small in-flight cap
//
// Two extra arms measure the observability layer itself: the same
// baseline traffic with an enabled MetricsRegistry attached and with the
// NoopRegistry (all handles detached). A gate asserts the noop path stays
// within noise of the un-instrumented baseline — the "provably near-free
// when disabled" contract of src/observability/metrics.h.
//
// Emits BENCH_serving.json, plus the enabled registry's snapshot as JSONL.
//
// Usage: bench_serving [--quick] [--out FILE] [--metrics-out FILE]
//   --quick        shrink request counts and dataset (CI smoke run)
//   --out          output path (default BENCH_serving.json)
//   --metrics-out  metrics snapshot path (default BENCH_serving_metrics.jsonl)
// SLIME_BENCH_SCALE scales the synthetic dataset (default 0.25).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "compute/thread_pool.h"
#include "data/synthetic.h"
#include "io/env.h"
#include "models/model_factory.h"
#include "observability/export.h"
#include "observability/metrics.h"
#include "serving/fallback.h"
#include "serving/model_server.h"
#include "train/trainer.h"

namespace slime {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

data::SplitDataset BenchSplit(double scale) {
  data::SyntheticConfig config = data::BeautySimConfig(scale);
  config.seed = 4242;
  return data::SplitDataset(data::GenerateSynthetic(config), 2);
}

models::ModelConfig BenchModelConfig(const data::SplitDataset& split) {
  models::ModelConfig c;
  c.num_items = split.num_items();
  c.num_users = split.num_users();
  c.max_len = 16;
  c.hidden_dim = 32;
  c.num_layers = 2;
  c.seed = 11;
  return c;
}

struct Percentiles {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

Percentiles LatencyPercentiles(std::vector<double> ms) {
  Percentiles p;
  if (ms.empty()) return p;
  std::sort(ms.begin(), ms.end());
  const auto at = [&](double q) {
    return ms[static_cast<size_t>(q * (ms.size() - 1))];
  };
  p.p50 = at(0.50);
  p.p95 = at(0.95);
  p.p99 = at(0.99);
  return p;
}

struct ScenarioResult {
  std::string name;
  int64_t offered = 0;
  double seconds = 0.0;
  Percentiles latency;  // over successful responses, milliseconds
  serving::ServerStats stats;
  const char* health = "";
  /// False for the NoopRegistry arm: its stats all read zero by design,
  /// so stats-based gates must skip it.
  bool stats_valid = true;
};

/// A fresh server per scenario so counters and cost estimates start clean.
std::unique_ptr<serving::ModelServer> MakeServer(
    const data::SplitDataset& split,
    const serving::ModelServerOptions& options) {
  auto server = std::make_unique<serving::ModelServer>(options);
  server->set_fallback(serving::PopularityFallback::FromSplit(split));
  server->set_canary_requests(train::ExportCanarySet(split, 4));
  const Status started =
      server->Start(models::CreateModel("SLIME4Rec", BenchModelConfig(split)));
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    std::exit(1);
  }
  return server;
}

std::vector<std::vector<int64_t>> BenchHistories(
    const data::SplitDataset& split, int64_t count) {
  std::vector<std::vector<int64_t>> histories;
  histories.reserve(count);
  for (int64_t i = 0; i < count; ++i) {
    histories.push_back(split.TestInput(i % split.num_users()));
  }
  return histories;
}

ScenarioResult DriveSequential(
    const std::string& name, serving::ModelServer* server,
    const std::vector<std::vector<int64_t>>& histories,
    int64_t deadline_nanos, int64_t requests) {
  serving::RecommendOptions options;
  options.top_k = 10;
  ScenarioResult result;
  result.name = name;
  result.offered = requests;
  std::vector<double> latencies;
  latencies.reserve(requests);
  const double t0 = NowSeconds();
  for (int64_t i = 0; i < requests; ++i) {
    serving::ServeRequest request;
    request.history = histories[i % histories.size()];
    request.options = options;
    request.deadline_nanos = deadline_nanos;
    const double r0 = NowSeconds();
    const auto response = server->Serve(request);
    if (response.ok()) latencies.push_back((NowSeconds() - r0) * 1e3);
  }
  result.seconds = NowSeconds() - t0;
  result.latency = LatencyPercentiles(std::move(latencies));
  result.stats = server->stats();
  result.health = serving::ToString(server->health());
  return result;
}

ScenarioResult DriveConcurrent(
    const std::string& name, serving::ModelServer* server,
    const std::vector<std::vector<int64_t>>& histories, int threads,
    int64_t requests_per_thread) {
  ScenarioResult result;
  result.name = name;
  result.offered = threads * requests_per_thread;
  const double t0 = NowSeconds();
  std::vector<std::thread> clients;
  clients.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      serving::RecommendOptions options;
      options.top_k = 10;
      for (int64_t i = 0; i < requests_per_thread; ++i) {
        serving::ServeRequest request;
        request.history = histories[(t + i * threads) % histories.size()];
        request.options = options;
        (void)server->Serve(request);
      }
    });
  }
  for (auto& c : clients) c.join();
  result.seconds = NowSeconds() - t0;
  result.stats = server->stats();
  result.health = serving::ToString(server->health());
  return result;
}

void EmitScenario(std::FILE* f, const ScenarioResult& r, bool last) {
  const auto& s = r.stats;
  const double served_rate =
      r.offered > 0 ? static_cast<double>(s.served) / r.offered : 0.0;
  const double shed_rate =
      r.offered > 0 ? static_cast<double>(s.shed) / r.offered : 0.0;
  const double fallback_rate =
      r.offered > 0 ? static_cast<double>(s.fallback_served) / r.offered
                    : 0.0;
  std::fprintf(
      f,
      "  \"%s\": {\n"
      "    \"offered\": %lld, \"served\": %lld, \"shed\": %lld,\n"
      "    \"deadline_exceeded\": %lld, \"full_model\": %lld,\n"
      "    \"fast_path\": %lld, \"fallback\": %lld,\n"
      "    \"served_rate\": %.4f, \"shed_rate\": %.4f, "
      "\"fallback_rate\": %.4f,\n"
      "    \"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f,\n"
      "    \"throughput_rps\": %.1f, \"health\": \"%s\"\n"
      "  }%s\n",
      r.name.c_str(), static_cast<long long>(r.offered),
      static_cast<long long>(s.served), static_cast<long long>(s.shed),
      static_cast<long long>(s.deadline_exceeded),
      static_cast<long long>(s.full_model_served),
      static_cast<long long>(s.fast_path_served),
      static_cast<long long>(s.fallback_served), served_rate, shed_rate,
      fallback_rate, r.latency.p50, r.latency.p95, r.latency.p99,
      r.seconds > 0.0 ? s.served / r.seconds : 0.0, r.health,
      last ? "" : ",");
}

int Main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_serving.json";
  std::string metrics_out_path = "BENCH_serving_metrics.jsonl";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_serving [--quick] [--out FILE] "
                   "[--metrics-out FILE]\n");
      return 2;
    }
  }
  double scale = quick ? 0.05 : 0.25;
  if (const char* env = std::getenv("SLIME_BENCH_SCALE")) {
    scale = std::atof(env);
  }
  const int64_t requests = quick ? 32 : 256;
  std::fprintf(stderr, "bench_serving: scale=%g requests=%lld\n", scale,
               static_cast<long long>(requests));

  const data::SplitDataset split = BenchSplit(scale);
  const auto histories = BenchHistories(split, 64);
  std::vector<ScenarioResult> results;

  // Baseline: effectively unbounded budget; establishes the p50 the
  // pressure levels are derived from.
  {
    auto server = MakeServer(split, serving::ModelServerOptions{});
    results.push_back(DriveSequential("baseline", server.get(), histories,
                                      serving::kNanosPerSecond, requests));
  }
  const int64_t p50_nanos = static_cast<int64_t>(
      results[0].latency.p50 * serving::kNanosPerMilli);

  // Deadline pressure: budgets at 4x, 1x, and 1/4 of the baseline p50.
  // Looser budgets mostly serve full-model; the tight one exercises the
  // ladder (cost-estimate skips, truncated retries, fallback).
  const struct {
    const char* name;
    double factor;
  } levels[] = {{"deadline_4x_p50", 4.0},
                {"deadline_1x_p50", 1.0},
                {"deadline_quarter_p50", 0.25}};
  for (const auto& level : levels) {
    serving::ModelServerOptions options;
    // Drop the budget floor below the (sub-millisecond, on this small
    // model) pass cost so the ladder is driven by the measured cost
    // estimates and the deadline itself, not by the default 1 ms floor.
    options.min_model_budget_nanos = 10 * serving::kNanosPerMicro;
    auto server = MakeServer(split, options);
    const int64_t budget = std::max<int64_t>(
        1, static_cast<int64_t>(p50_nanos * level.factor));
    results.push_back(DriveSequential(level.name, server.get(), histories,
                                      budget, requests));
  }

  // Overload: the token bucket admits roughly half the offered rate (the
  // baseline throughput); everything above it is shed with retry-after.
  {
    const double offered_rps =
        results[0].seconds > 0.0 ? requests / results[0].seconds : 100.0;
    serving::ModelServerOptions options;
    options.admission.tokens_per_second = std::max(1.0, offered_rps / 2.0);
    options.admission.burst = 4.0;
    auto server = MakeServer(split, options);
    results.push_back(DriveSequential("overload_rate_half", server.get(),
                                      histories, serving::kNanosPerSecond,
                                      requests));
  }

  // Concurrency: four clients against a two-slot in-flight budget.
  {
    serving::ModelServerOptions options;
    options.admission.max_in_flight = 2;
    auto server = MakeServer(split, options);
    results.push_back(DriveConcurrent("concurrent_4_clients", server.get(),
                                      histories, 4, requests / 4));
  }

  // Observability arms: baseline traffic with an enabled registry (whose
  // snapshot is exported below) and with the NoopRegistry — detached
  // handles, the provably-near-free disabled path.
  obs::MetricsRegistry registry;
  {
    serving::ModelServerOptions options;
    options.metrics = &registry;
    auto server = MakeServer(split, options);
    results.push_back(DriveSequential("metrics_enabled", server.get(),
                                      histories, serving::kNanosPerSecond,
                                      requests));
  }
  {
    obs::NoopRegistry noop;  // outlives the server's handles below
    serving::ModelServerOptions options;
    options.metrics = &noop;
    auto server = MakeServer(split, options);
    ScenarioResult noop_result =
        DriveSequential("metrics_noop", server.get(), histories,
                        serving::kNanosPerSecond, requests);
    noop_result.stats_valid = false;
    results.push_back(std::move(noop_result));
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"host\": {\"hardware_threads\": %d, \"quick\": %s},\n",
               compute::HardwareThreads(), quick ? "true" : "false");
  for (size_t i = 0; i < results.size(); ++i) {
    EmitScenario(f, results[i], i + 1 == results.size());
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());

  // Export the enabled arm's registry snapshot (counters, gauges, latency
  // histograms with integer percentiles) for the CI artifact.
  const Status ms = io::Env::Default()->WriteFile(
      metrics_out_path, obs::SnapshotToJsonl(registry.Snapshot()));
  if (!ms.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", metrics_out_path.c_str(),
                 ms.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", metrics_out_path.c_str());

  // Sanity gates so CI fails loudly on a serving regression: the baseline
  // must shed nothing and serve everyone at the full tier, and with the
  // fallback configured every admitted request must be served somehow.
  const ScenarioResult& baseline = results[0];
  if (baseline.stats.shed != 0 ||
      baseline.stats.full_model_served != baseline.offered) {
    std::fprintf(stderr, "baseline degraded: %lld of %lld at full tier\n",
                 static_cast<long long>(baseline.stats.full_model_served),
                 static_cast<long long>(baseline.offered));
    return 1;
  }
  for (const ScenarioResult& r : results) {
    if (!r.stats_valid) continue;  // NoopRegistry arm: stats read zero
    if (r.stats.served + r.stats.shed <
        static_cast<int64_t>(r.offered * 0.99)) {
      std::fprintf(stderr, "%s lost requests: served %lld + shed %lld < %lld\n",
                   r.name.c_str(), static_cast<long long>(r.stats.served),
                   static_cast<long long>(r.stats.shed),
                   static_cast<long long>(r.offered));
      return 1;
    }
  }
  // Disabled-path gate: the NoopRegistry arm drives the same traffic as
  // the baseline, so its p50 must stay within noise of it. The bound is
  // deliberately generous (2x + 0.25 ms) — it catches accidental locks or
  // allocations on the disabled path, not microseconds.
  const ScenarioResult* noop_arm = nullptr;
  for (const ScenarioResult& r : results) {
    if (r.name == "metrics_noop") noop_arm = &r;
  }
  if (noop_arm != nullptr &&
      noop_arm->latency.p50 > baseline.latency.p50 * 2.0 + 0.25) {
    std::fprintf(stderr,
                 "noop-registry overhead: p50 %.3f ms vs baseline %.3f ms\n",
                 noop_arm->latency.p50, baseline.latency.p50);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace slime

int main(int argc, char** argv) { return slime::Main(argc, argv); }
