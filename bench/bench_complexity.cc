// Microbenchmark backing Sec. III-F (complexity analysis): the filter
// mixer's forward pass scales ~O(N log N) in the sequence length, the
// self-attention layer it replaces scales O(N^2). google-benchmark
// binary; run with --benchmark_filter=... to narrow.

#include <benchmark/benchmark.h>

#include "core/filter_mixer.h"
#include "fft/fft.h"
#include "fft/spectral_ops.h"
#include "nn/attention.h"

namespace slime {
namespace {

constexpr int64_t kDim = 32;
constexpr int64_t kBatch = 8;

void BM_FilterMixerForward(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  core::FilterMixerOptions options;
  options.alpha = 0.4;
  core::FilterMixerLayer layer(n, kDim, 2, 0, options, 0.0f, &rng);
  layer.SetTraining(false);
  autograd::Variable x =
      autograd::Constant(Tensor::Randn({kBatch, n, kDim}, &rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(layer.Forward(x, &rng).value().data());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_FilterMixerForward)
    ->RangeMultiplier(2)
    ->Range(16, 512)
    ->Complexity(benchmark::oNLogN);

void BM_SelfAttentionForward(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(2);
  nn::MultiHeadSelfAttention attn(kDim, 2, 0.0f, &rng);
  attn.SetTraining(false);
  autograd::Variable x =
      autograd::Constant(Tensor::Randn({kBatch, n, kDim}, &rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        attn.Forward(x, /*causal=*/true, Tensor(), &rng).value().data());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SelfAttentionForward)
    ->RangeMultiplier(2)
    ->Range(16, 512)
    ->Complexity(benchmark::oNSquared);

void BM_RfftVerticalPlan(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(3);
  Tensor re = Tensor::Randn({n, kDim}, &rng);
  Tensor im = Tensor::Zeros({n, kDim});
  const fft::VerticalFftPlan& plan = fft::GetVerticalPlan(n);
  for (auto _ : state) {
    plan.Transform(re.data(), im.data(), kDim, false);
    benchmark::DoNotOptimize(re.data());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_RfftVerticalPlan)
    ->RangeMultiplier(2)
    ->Range(16, 1024)
    ->Complexity(benchmark::oNLogN);

void BM_ElementwiseFilterProduct(benchmark::State& state) {
  // The O(nd) elementwise product of Eq. 21/25.
  const int64_t n = state.range(0);
  Rng rng(4);
  core::LearnableFilter filter(fft::RfftBins(n), kDim, &rng);
  autograd::Variable re = autograd::Constant(
      Tensor::Randn({kBatch, fft::RfftBins(n), kDim}, &rng));
  autograd::Variable im = autograd::Constant(
      Tensor::Randn({kBatch, fft::RfftBins(n), kDim}, &rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        filter.Apply({re, im}, Tensor()).re.value().data());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_ElementwiseFilterProduct)
    ->RangeMultiplier(2)
    ->Range(16, 512)
    ->Complexity(benchmark::oN);

}  // namespace
}  // namespace slime

BENCHMARK_MAIN();
