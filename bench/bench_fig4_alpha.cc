// Regenerates Fig. 4: relative improvement of SLIME4Rec over DuoRec as the
// dynamic filter size ratio alpha sweeps 0.1 .. 1.0. The paper reports an
// interior optimum per dataset (0.4 Beauty, 0.8 Clothing, 0.3 Sports) and
// that alpha = 0.1 is suboptimal.

#include <cstdio>

#include "bench_util/experiment.h"
#include "common/string_util.h"
#include "bench_util/paper_values.h"
#include "bench_util/table_printer.h"

namespace slime {
namespace bench {
namespace {

void RunDataset(const data::SyntheticConfig& preset) {
  const data::SplitDataset split = BuildSplit(preset);
  const std::string name = PaperDatasetName(split.name());
  const models::ModelConfig base = DefaultModelConfig(split);
  const train::TrainConfig tc = BenchTrainConfig();
  const ExperimentResult duo =
      RunModel("DuoRec", split, base, {}, tc);
  std::printf("\n=== %s (DuoRec reference: HR@5 %s, NDCG@5 %s) ===\n",
              name.c_str(), Fmt4(duo.test.hr5).c_str(),
              Fmt4(duo.test.ndcg5).c_str());
  TablePrinter table({"alpha", "HR@5", "NDCG@5", "improv. HR@5 %",
                      "improv. NDCG@5 %"});
  double best_alpha = 0.0;
  double best_ndcg = -1.0;
  for (int i = 1; i <= 10; ++i) {
    const double alpha = i / 10.0;
    core::FilterMixerOptions m = DefaultMixerOptions(split.name());
    m.alpha = alpha;
    const ExperimentResult r =
        RunSlimeVariant(MakeSlimeConfig(base, m), split, tc);
    const double ih =
        duo.test.hr5 > 0 ? 100.0 * (r.test.hr5 / duo.test.hr5 - 1.0) : 0.0;
    const double in =
        duo.test.ndcg5 > 0 ? 100.0 * (r.test.ndcg5 / duo.test.ndcg5 - 1.0)
                           : 0.0;
    table.AddRow({Fmt4(alpha).substr(0, 3), Fmt4(r.test.hr5),
                  Fmt4(r.test.ndcg5), FormatFloat(ih, 1),
                  FormatFloat(in, 1)});
    std::fflush(stdout);
    if (r.test.ndcg5 > best_ndcg) {
      best_ndcg = r.test.ndcg5;
      best_alpha = alpha;
    }
  }
  table.Print();
  std::printf("best alpha on %s: %.1f (paper: 0.4 Beauty / 0.8 Clothing / "
              "0.3 Sports; large for dense ML-1M)\n",
              name.c_str(), best_alpha);
}

void Run() {
  std::printf("Fig. 4 reproduction: dynamic filter size ratio sweep "
              "(scale %.2f)\n",
              BenchDataScale(0.15));
  RunDataset(data::BeautySimConfig(BenchDataScale(0.15)));
  RunDataset(data::SportsSimConfig(BenchDataScale(0.15)));
  RunDataset(data::Ml1mSimConfig(BenchDataScale(0.15)));
}

}  // namespace
}  // namespace bench
}  // namespace slime

int main() {
  slime::bench::Run();
  return 0;
}
