// Regenerates Table II: overall HR@{5,10} and NDCG@{5,10} of the eleven
// models on all five (simulated) datasets, printed beside the paper's
// reported values. The reproduction target is the ordering/shape (who wins,
// roughly by how much), not absolute numbers — see DESIGN.md.

#include <cstdio>

#include "bench_util/experiment.h"
#include "bench_util/paper_values.h"
#include "bench_util/table_printer.h"

namespace slime {
namespace bench {
namespace {

void RunDataset(const data::SyntheticConfig& preset) {
  const data::SplitDataset split = BuildSplit(preset);
  const std::string paper_name = PaperDatasetName(split.name());
  std::printf("\n=== %s (paper: %s) — %lld users, %lld items ===\n",
              split.name().c_str(), paper_name.c_str(),
              static_cast<long long>(split.num_users()),
              static_cast<long long>(split.num_items()));
  TablePrinter table({"Model", "HR@5", "HR@10", "NDCG@5", "NDCG@10",
                      "paper HR@5", "paper HR@10", "paper NDCG@5",
                      "paper NDCG@10", "sec"});
  for (const auto& model_name : models::AllModelNames()) {
    const ExperimentResult r =
        RunModel(model_name, split, DefaultModelConfig(split),
                 DefaultMixerOptions(split.name()), BenchTrainConfig());
    const PaperMetrics* p = Table2Value(paper_name, model_name);
    table.AddRow({model_name, Fmt4(r.test.hr5), Fmt4(r.test.hr10),
                  Fmt4(r.test.ndcg5), Fmt4(r.test.ndcg10),
                  p ? Fmt4(p->hr5) : "-", p ? Fmt4(p->hr10) : "-",
                  p ? Fmt4(p->ndcg5) : "-", p ? Fmt4(p->ndcg10) : "-",
                  Fmt4(r.seconds).substr(0, 5)});
    std::fflush(stdout);
  }
  table.Print();
}

void Run() {
  std::printf("Table II reproduction (dataset scale %.2f; set "
              "SLIME_BENCH_SCALE to resize)\n",
              BenchDataScale(0.25));
  for (const auto& preset : data::AllPresets(BenchDataScale(0.25))) {
    RunDataset(preset);
  }
  std::printf(
      "\nExpected shape (paper): BPR-MF worst everywhere; contrastive\n"
      "models beat their vanilla backbones; DuoRec strongest baseline;\n"
      "SLIME4Rec best overall.\n");
}

}  // namespace
}  // namespace bench
}  // namespace slime

int main() {
  slime::bench::Run();
  return 0;
}
