// Regenerates Fig. 6: robustness to synthetic noise. A proportion epsilon
// of the training-region interactions is replaced by uniformly random
// items (the evaluation targets stay clean); SLIME4Rec should degrade more
// slowly than DuoRec because the slide filters separate the injected
// uniform noise in the frequency domain.

#include <cstdio>

#include "bench_util/experiment.h"
#include "common/string_util.h"
#include "bench_util/paper_values.h"
#include "bench_util/table_printer.h"

namespace slime {
namespace bench {
namespace {

void RunDataset(const data::SyntheticConfig& preset) {
  const std::string name = PaperDatasetName(preset.name);
  std::printf("\n=== %s ===\n", name.c_str());
  const train::TrainConfig tc = BenchTrainConfig();
  TablePrinter table({"epsilon", "SLIME4Rec HR@5", "DuoRec HR@5",
                      "SLIME relative drop %", "DuoRec relative drop %"});
  double slime0 = 0.0;
  double duo0 = 0.0;
  double slime_last_drop = 0.0;
  double duo_last_drop = 0.0;
  for (const double eps : {0.0, 0.1, 0.2, 0.3}) {
    Rng noise_rng(555);
    const data::InteractionDataset noisy =
        data::GenerateSynthetic(preset).FilterMinInteractions(5).InjectNoise(
            eps, &noise_rng);
    const data::SplitDataset split(noisy, 4);
    const models::ModelConfig base = DefaultModelConfig(split);
    const core::FilterMixerOptions m = DefaultMixerOptions(split.name());
    const ExperimentResult slime =
        RunSlimeVariant(MakeSlimeConfig(base, m), split, tc);
    const ExperimentResult duo = RunModel("DuoRec", split, base, {}, tc);
    if (eps == 0.0) {
      slime0 = slime.test.hr5;
      duo0 = duo.test.hr5;
    }
    slime_last_drop =
        slime0 > 0 ? 100.0 * (1.0 - slime.test.hr5 / slime0) : 0.0;
    duo_last_drop = duo0 > 0 ? 100.0 * (1.0 - duo.test.hr5 / duo0) : 0.0;
    table.AddRow({Fmt4(eps).substr(0, 4), Fmt4(slime.test.hr5),
                  Fmt4(duo.test.hr5), FormatFloat(slime_last_drop, 1),
                  FormatFloat(duo_last_drop, 1)});
    std::fflush(stdout);
  }
  table.Print();
  std::printf("shape check at the largest epsilon: SLIME4Rec's relative "
              "drop (%.1f%%) vs DuoRec's (%.1f%%)%s\n",
              slime_last_drop, duo_last_drop,
              slime_last_drop <= duo_last_drop ? " [OK: more robust]"
                                               : " [MISS]");
}

void Run() {
  std::printf("Fig. 6 reproduction: robustness to synthetic interaction "
              "noise (scale %.2f)\n",
              BenchDataScale(0.15));
  // The paper's Fig. 6 uses Beauty and ML-1M.
  RunDataset(data::BeautySimConfig(BenchDataScale(0.15)));
  RunDataset(data::Ml1mSimConfig(BenchDataScale(0.15)));
}

}  // namespace
}  // namespace bench
}  // namespace slime

int main() {
  slime::bench::Run();
  return 0;
}
