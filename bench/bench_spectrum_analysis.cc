// Companion analysis to Sec. IV-G1: the paper attributes the per-dataset
// optimal filter size alpha to how concentrated the dataset's frequency
// content is ("Amazon components concentrated in the low-frequency region;
// ML-1M spectra scattered across bands"). This bench computes a
// dataset-level spectrum profile for all five presets — no training, runs
// in seconds.

#include <cstdio>

#include "analysis/spectrum.h"
#include "bench_util/experiment.h"
#include "bench_util/paper_values.h"
#include "bench_util/table_printer.h"
#include "common/string_util.h"

namespace slime {
namespace bench {
namespace {

void Run() {
  const double scale = BenchDataScale(1.0);
  std::printf("Dataset spectrum profiles (Sec. IV-G1 companion), scale "
              "%.2f, N = 32\n\n",
              scale);
  TablePrinter table({"Dataset", "low third", "mid third", "high third",
                      "entropy (nats)"});
  double ml1m_entropy = 0.0;
  double amazon_entropy_sum = 0.0;
  for (const auto& preset : data::AllPresets(scale)) {
    const data::InteractionDataset dataset =
        data::GenerateSynthetic(preset).FilterMinInteractions(5);
    const analysis::SpectrumProfile p =
        analysis::ComputeSpectrumProfile(dataset, 32);
    table.AddRow({PaperDatasetName(preset.name), FormatFloat(p.low_band, 3),
                  FormatFloat(p.mid_band, 3), FormatFloat(p.high_band, 3),
                  FormatFloat(p.entropy, 3)});
    if (preset.name == "ml1m-sim") {
      ml1m_entropy = p.entropy;
    } else if (preset.name != "yelp-sim") {
      amazon_entropy_sum += p.entropy;
    }
  }
  table.Print();
  const double amazon_mean = amazon_entropy_sum / 3.0;
  std::printf(
      "\nml1m-sim spectral entropy %.3f vs Amazon-sim mean %.3f: the dense\n"
      "dataset's spectrum is the most scattered%s — matching the paper's\n"
      "explanation for why ML-1M prefers a large dynamic filter (alpha\n"
      "near 1) while sparse datasets prefer small focused windows.\n",
      ml1m_entropy, amazon_mean,
      ml1m_entropy > amazon_mean ? " [OK]" : " [MISS]");
}

}  // namespace
}  // namespace bench
}  // namespace slime

int main() {
  slime::bench::Run();
  return 0;
}
